"""Cross-packet lockstep batch driver for the compiled tier.

:class:`BatchProgramRunner` advances several structurally-identical
:class:`~repro.sim.core.Core` instances ("lanes") to completion in
lockstep, replicating :meth:`Core.run` bit-exactly while replacing the
hot inner execution with the lane-batched functions emitted by
:mod:`repro.sim.codegen` (:func:`~repro.sim.codegen.cga_batch_runner` /
:func:`~repro.sim.codegen.vliw_batch_runner`): one Python frame advances
every lane through a VLIW segment or a whole CGA steady-state window,
amortizing interpreter overhead across the batch.

Lanes are expected to run ``patch_constants`` variants of one linked
program — immediate *values* may differ per lane (delivered as per-lane
imm pools), structure may not.  The driver does not trust that contract
blindly: every dispatch groups lanes by structural signature (and, for
kernels, by resolved trip count), so lanes that diverge — different
``pc``, different structure, different trips — simply drop out of the
batch and are stepped through the ordinary per-packet compiled engines,
which are bit-identical by the tier-3 contract.

Faults are per-lane: a lane whose generated code raises (scratchpad
bounds, VLIW runaway) is recorded in its :class:`LaneResult` and — when
a ``fresh`` factory is provided — re-run per-packet from scratch, which
reproduces the per-packet result or exception bit-identically (the
batched fault leaves deferred counters unflushed, so the partial lane
state is never reused).

Tracing must be disabled on every lane: the batched code omits tracer
hooks entirely (that is what makes it fast), so lockstep execution under
an enabled tracer would silently drop events.  :meth:`run` refuses it.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.sim import codegen
from repro.sim.cga import CgaFault
from repro.sim.core import MODE_SWITCH_CYCLES, Core, SimulationError
from repro.sim.memory import MemoryError_
from repro.sim.vliw import StopEvent, VliwFault

MASK32 = 0xFFFFFFFF

_UNSET = object()


class LaneResult:
    """Outcome of one lane: the core holding final state, the error (if
    the lane faulted), and whether the per-packet fallback ran it."""

    __slots__ = ("core", "error", "fell_back")

    def __init__(self, core: Optional[Core], error: Optional[BaseException] = None,
                 fell_back: bool = False) -> None:
        self.core = core
        self.error = error
        self.fell_back = fell_back

    @property
    def ok(self) -> bool:
        return self.error is None


class BatchProgramRunner:
    """Resident lockstep driver over a fixed set of lane slots.

    One runner instance is meant to live as long as its lane set (e.g.
    the resident cores of one receiver region at one batch width): the
    per-lane signature/imm-pool caches are keyed by lane index and
    invalidated by program-object identity, so re-dispatching the same
    (or a freshly patched) program costs no signature walks after the
    first packet — the 27% of warm per-packet time the profile blamed on
    pool/signature recomputation.
    """

    def __init__(self, max_cycles: int = 10_000_000) -> None:
        self.max_cycles = max_cycles
        #: (signature id, n) -> batch fn | None (codegen refused).
        self._vliw_fns: Dict[tuple, object] = {}
        #: (signature id, trip, n) -> trip-specialized batch fn | None.
        self._cga_fns: Dict[tuple, object] = {}
        #: (pc, lane) -> (bundles, signature id, imms, end_pc).
        self._vliw_lane: Dict[tuple, tuple] = {}
        #: (kernel_id_slot, lane) -> (kernel, signature id, imms).
        self._cga_lane: Dict[tuple, tuple] = {}
        #: signature tuple -> small interned id.  Group keys and batch-fn
        #: cache keys carry the id, so the (large) signature tuple is
        #: hashed once per memo fill, not once per lane per round.
        self._sig_ids: Dict[tuple, int] = {}

    # -- per-lane memoization (identity-guarded: strong refs pin ids) ---

    def _lane_vliw(self, lane: int, core: Core, pc: int) -> tuple:
        key = (pc, lane)
        ent = self._vliw_lane.get(key)
        bundles = core.program.bundles
        if ent is not None and ent[0] is bundles:
            return ent
        end_pc = codegen.vliw_segment_end(bundles, pc)
        sig = codegen.vliw_signature(bundles, pc, end_pc)
        imms = codegen.vliw_imms(bundles, pc, end_pc)
        sid = self._sig_ids.setdefault(sig, len(self._sig_ids))
        ent = (bundles, sid, imms, end_pc)
        self._vliw_lane[key] = ent
        return ent

    def _lane_cga(self, lane: int, kid, kernel) -> tuple:
        key = (kid, lane)
        ent = self._cga_lane.get(key)
        if ent is not None and ent[0] is kernel:
            return ent
        sig = codegen.cga_signature(kernel)
        sid = self._sig_ids.setdefault(sig, len(self._sig_ids))
        ent = (kernel, sid, codegen.cga_imms(kernel))
        self._cga_lane[key] = ent
        return ent

    # -- batch-function lookup ------------------------------------------

    def _vliw_fn(self, core0: Core, pc: int, sid: int, n: int):
        key = (sid, n)
        fn = self._vliw_fns.get(key, _UNSET)
        if fn is _UNSET:
            try:
                fn, _end = codegen.vliw_batch_runner(
                    core0.program.bundles, pc, core0.vliw.slot_fus,
                    core0.cdrf, core0.cprf, core0.scratchpad, core0.icache,
                    VliwFault, n,
                )
            except codegen.CodegenUnsupported:
                fn = None
            self._vliw_fns[key] = fn
        return fn

    def _cga_fn(self, core0: Core, kernel0, sid: int, trip: int, n: int):
        key = (sid, trip, n)
        fn = self._cga_fns.get(key, _UNSET)
        if fn is _UNSET:
            try:
                fn = codegen.cga_batch_runner(
                    kernel0, core0.arch, CgaFault,
                    cdrf_ports=(core0.cdrf.read_ports, core0.cdrf.write_ports),
                    cprf_ports=(core0.cprf.read_ports, core0.cprf.write_ports),
                    n_lanes=n, trip=trip,
                )
            except codegen.CodegenUnsupported:
                fn = None
            self._cga_fns[key] = fn
        return fn

    # -- driving --------------------------------------------------------

    def run(self, cores: List[Core],
            fresh: Optional[Callable[[int], Core]] = None) -> List[LaneResult]:
        """Drive every lane to halt (or error); returns per-lane results.

        *fresh*, when given, maps a lane index to a brand-new fully
        prepared core (pokes and memory applied, nothing run); a lane
        that faults is then replayed per-packet on that core — the
        canonical result or exception — and marked ``fell_back``.
        Without *fresh* the batched-path exception is recorded directly
        (mapped exactly as :meth:`Core.run` would map it).
        """
        for core in cores:
            if core.tracer.enabled:
                raise ValueError("batch execution requires tracing disabled")
        n = len(cores)
        results = [LaneResult(core) for core in cores]

        def fail(lane: int, exc: BaseException) -> None:
            if fresh is None:
                results[lane].error = exc
                results[lane].fell_back = False
                return
            replay = LaneResult(None, fell_back=True)
            results[lane] = replay
            try:
                core = fresh(lane)
                replay.core = core
                core.run(max_cycles=self.max_cycles)
            except Exception as replay_exc:
                replay.error = replay_exc

        while True:
            act = [i for i in range(n)
                   if results[i].error is None and not results[i].fell_back
                   and not results[i].core.halted]
            if not act:
                break
            # Core.run's loop-top runaway check, once per stop round.
            for i in list(act):
                if results[i].core.cycle > self.max_cycles:
                    fail(i, SimulationError(
                        "exceeded %d cycles; runaway program?" % self.max_cycles))
                    act.remove(i)
            if not act:
                continue
            stop_ev = self._vliw_phase(act, results, fail)
            self._stop_phase(stop_ev, results, fail)
        return results

    # -- VLIW phase: run every active lane to its next stop event -------

    def _vliw_phase(self, act: List[int], results: List[LaneResult],
                    fail) -> Dict[int, StopEvent]:
        stop_ev: Dict[int, StopEvent] = {}
        pending = list(act)
        while pending:
            # Fell off the instruction stream: same stop the engine makes.
            regroup: List[int] = []
            for i in pending:
                core = results[i].core
                if 0 <= core.pc < len(core.program.bundles):
                    regroup.append(i)
                else:
                    stop_ev[i] = StopEvent("end", next_pc=core.pc)
            groups: Dict[tuple, List[int]] = {}
            lane_imms: Dict[int, tuple] = {}
            for i in regroup:
                core = results[i].core
                _bundles, sid, imms, _end = self._lane_vliw(i, core, core.pc)
                lane_imms[i] = imms
                groups.setdefault((core.pc, sid), []).append(i)
            pending = []
            convergent = len(groups) == 1
            for (pc, sid), lanes in groups.items():
                fn = None
                if convergent and len(lanes) > 1:
                    core0 = results[lanes[0]].core
                    try:
                        fn = self._vliw_fn(core0, pc, sid, len(lanes))
                    except VliwFault as exc:
                        for i in lanes:
                            fail(i, SimulationError(str(exc)))
                        continue
                if fn is None:
                    self._vliw_individual(lanes, results, stop_ev, fail)
                    continue
                pending.extend(
                    self._vliw_batch_step(fn, lanes, lane_imms, results,
                                          stop_ev, fail))
        return stop_ev

    def _vliw_individual(self, lanes, results, stop_ev, fail) -> None:
        """Per-packet compiled stepping for divergent / unsupported /
        singleton lanes: one full ``vliw.run`` to the next stop event."""
        for i in lanes:
            core = results[i].core
            try:
                stop, cycle = core.vliw.run(core.pc, core.cycle,
                                            max_cycle=self.max_cycles)
            except VliwFault as exc:
                fail(i, SimulationError(str(exc)))
                continue
            except Exception as exc:
                fail(i, exc)
                continue
            core.cycle = cycle
            core.pc = stop.next_pc
            stop_ev[i] = stop

    def _vliw_batch_step(self, fn, lanes, lane_imms, results, stop_ev,
                         fail) -> List[int]:
        """One batched segment; returns the lanes that continue (their
        segment ended without a stop event, e.g. a fallthrough branch)."""
        mcores = [results[i].core for i in lanes]
        m = len(lanes)
        stops: List[object] = [None] * m
        next_pcs = [0] * m
        cycles_out = [0] * m
        faults: List[object] = [None] * m
        fn(
            [c.cycle for c in mcores],
            self.max_cycles,
            [lane_imms[i] for i in lanes],
            [c.cdrf._regs for c in mcores],
            [c.cprf._regs for c in mcores],
            [c.vliw._reg_ready for c in mcores],
            [c.vliw._pred_ready for c in mcores],
            [c.icache for c in mcores],
            [c.scratchpad for c in mcores],
            [c.stats for c in mcores],
            stops, next_pcs, cycles_out, faults,
        )
        carry_on: List[int] = []
        for k, i in enumerate(lanes):
            if faults[k] is not None:
                exc = faults[k]
                if isinstance(exc, VliwFault):
                    exc = SimulationError(str(exc))
                fail(i, exc)
                continue
            core = results[i].core
            core.cycle = cycles_out[k]
            core.pc = next_pcs[k]
            if stops[k] is not None:
                stop_ev[i] = stops[k]
            else:
                carry_on.append(i)
        return carry_on

    # -- stop phase: halts and (batched) kernel execution ---------------

    def _stop_phase(self, stop_ev: Dict[int, StopEvent], results, fail) -> None:
        groups: Dict[tuple, List[int]] = {}
        ginfo: Dict[int, tuple] = {}
        for i, stop in stop_ev.items():
            if stop.reason in ("halt", "end"):
                results[i].core.halted = True
                continue
            if stop.reason != "cga":
                fail(i, SimulationError("unknown stop reason %r" % stop.reason))
                continue
            core = results[i].core
            kid = stop.kernel_id
            if kid is None or kid not in core.program.kernels:
                fail(i, SimulationError("cga references unknown kernel %r" % kid))
                continue
            kernel = core.program.kernels[kid]
            # Mode switch in (Core._run_kernel).
            core.stats.cga_cycles += MODE_SWITCH_CYCLES
            core.cycle += MODE_SWITCH_CYCLES
            trip = kernel.trip_count
            if trip is None:
                if kernel.trip_count_reg is None:
                    fail(i, CgaFault("kernel %s has no trip count" % kernel.name))
                    continue
                trip = core.cdrf.peek(kernel.trip_count_reg) & MASK32
            if trip <= 0:
                core.kernel_log.append({"kernel": kernel.name, "cycles": 0})
                core.stats.cga_cycles += MODE_SWITCH_CYCLES
                core.cycle += MODE_SWITCH_CYCLES
                continue
            _kernel, sid, imms = self._lane_cga(i, kid, kernel)
            ginfo[i] = (kernel, imms)
            groups.setdefault((sid, trip), []).append(i)
        convergent = len(groups) == 1
        for (sid, trip), lanes in groups.items():
            fn = None
            if convergent and len(lanes) > 1:
                core0 = results[lanes[0]].core
                try:
                    fn = self._cga_fn(core0, ginfo[lanes[0]][0], sid, trip,
                                      len(lanes))
                except CgaFault as exc:
                    for i in lanes:
                        fail(i, exc)
                    continue
            if fn is None:
                self._cga_individual(lanes, ginfo, results, fail)
                continue
            self._cga_batch_step(fn, trip, lanes, ginfo, results, fail)

    def _cga_individual(self, lanes, ginfo, results, fail) -> None:
        """Per-packet compiled kernel execution (the engine applies
        preloads and resolves the trip itself, exactly as in Core.run)."""
        for i in lanes:
            core = results[i].core
            kernel = ginfo[i][0]
            start = core.cycle
            try:
                end = core.cga.run(kernel, core.cycle)
            except Exception as exc:
                fail(i, exc)
                continue
            core.cycle = end
            core.kernel_log.append({"kernel": kernel.name, "cycles": end - start})
            core.stats.cga_cycles += MODE_SWITCH_CYCLES
            core.cycle += MODE_SWITCH_CYCLES

    def _cga_batch_step(self, fn, trip, lanes, ginfo, results, fail) -> None:
        # Preload faults are structural; detect before mutating any lane
        # so survivors can still run (per-packet) without double-applied
        # preload side effects.
        ready: List[int] = []
        for i in lanes:
            kernel = ginfo[i][0]
            bad = next((p for p in kernel.preloads
                        if p.fu not in results[i].core.local_rfs), None)
            if bad is not None:
                fail(i, CgaFault(
                    "preload targets FU%d without a local RF" % bad.fu))
            else:
                ready.append(i)
        if len(ready) != len(lanes):
            self._cga_individual(ready, ginfo, results, fail)
            return
        starts = []
        preload_cycles_s = []
        start_cycles = []
        for i in ready:
            core = results[i].core
            kernel = ginfo[i][0]
            local_rfs = core.local_rfs
            cdrf_peek = core.cdrf.peek
            for preload in kernel.preloads:
                local_rfs[preload.fu].write(
                    preload.lrf_index, cdrf_peek(preload.cdrf_reg))
                core.stats.cdrf_reads += 1
            out_latch = core.cga._out_latch
            for j in range(len(out_latch)):
                out_latch[j] = 0
            starts.append(core.cycle)
            pre = (len(kernel.preloads) + 1) // 2
            preload_cycles_s.append(pre)
            start_cycles.append(core.cycle + pre)
        m = len(ready)
        mcores = [results[i].core for i in ready]
        ends = [0] * m
        faults: List[object] = [None] * m
        fn(
            [trip] * m,
            start_cycles,
            preload_cycles_s,
            [ginfo[i][1] for i in ready],
            [c.cga._out_latch for c in mcores],
            [c.cdrf._regs for c in mcores],
            [c.cprf._regs for c in mcores],
            [c.local_rfs for c in mcores],
            [c.scratchpad for c in mcores],
            [c.stats for c in mcores],
            ends, faults,
        )
        for k, i in enumerate(ready):
            if faults[k] is not None:
                fail(i, faults[k])
                continue
            core = results[i].core
            core.cycle = ends[k]
            core.kernel_log.append(
                {"kernel": ginfo[i][0].name, "cycles": ends[k] - starts[k]})
            core.stats.cga_cycles += MODE_SWITCH_CYCLES
            core.cycle += MODE_SWITCH_CYCLES


def run_batch(cores: List[Core],
              fresh: Optional[Callable[[int], Core]] = None,
              max_cycles: int = 10_000_000) -> List[LaneResult]:
    """Convenience one-shot wrapper: drive *cores* to completion with a
    throwaway :class:`BatchProgramRunner`."""
    return BatchProgramRunner(max_cycles=max_cycles).run(cores, fresh=fresh)
