"""Executable program containers shared by the compiler and the simulator.

A :class:`Program` holds:

* ``bundles`` — the VLIW instruction stream (3 slots per bundle for the
  paper core), indexed by bundle PC;
* ``kernels`` — CGA kernels by id, entered via the ``cga #id``
  instruction: each kernel is a modulo schedule materialised as ``II``
  configuration contexts plus software-pipeline metadata.

CGA context format
------------------
One :class:`CgaContext` holds one :class:`CgaOp` per active functional
unit.  A :class:`CgaOp` describes, for its unit and cycle slot:

* the opcode,
* source selections (:class:`SrcSel`): own output latch, a wire from a
  neighbour unit's output latch, a local RF entry, a CDRF/CPRF entry
  (only on units with central ports), an immediate, or a *phi* that
  reads an initial immediate on the first iteration and another source
  afterwards (how modulo schedulers realise loop-carried values),
* destination selections (:class:`DstSel`): besides the implicit output
  latch, optional local RF / CDRF / CPRF writes, the central writes
  optionally restricted to the final iteration (live-out values),
* the software-pipeline ``stage``, which gates execution during
  prologue and epilogue.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.isa.instruction import Imm, Instruction
from repro.isa.opcodes import Opcode


class SrcKind(enum.Enum):
    """Source multiplexer selections available to a CGA operand."""

    SELF = "self"  # this unit's own output latch
    WIRE = "wire"  # another unit's output latch over the interconnect
    LRF = "lrf"  # local register file entry
    CDRF = "cdrf"  # central data RF (units with central ports only)
    CPRF = "cprf"  # central predicate RF (units with central ports only)
    IMM = "imm"  # immediate from the configuration word


@dataclass(frozen=True)
class SrcSel:
    """One source-operand selection.

    ``value`` is the FU index for ``WIRE``, the register index for
    ``LRF``/``CDRF``/``CPRF``, the literal for ``IMM`` and unused for
    ``SELF``.  When ``init`` is not ``None`` the selection is a phi: on
    the operation's first iteration the immediate ``init`` is read
    instead of the normal source (loop-carried initialisation).
    """

    kind: SrcKind
    value: int = 0
    init: Optional[int] = None

    @staticmethod
    def self_() -> "SrcSel":
        """Select this unit's own output latch."""
        return SrcSel(SrcKind.SELF)

    @staticmethod
    def wire(fu: int) -> "SrcSel":
        """Select unit *fu*'s output latch via the interconnect."""
        return SrcSel(SrcKind.WIRE, fu)

    @staticmethod
    def lrf(index: int) -> "SrcSel":
        """Select local register *index*."""
        return SrcSel(SrcKind.LRF, index)

    @staticmethod
    def cdrf(index: int) -> "SrcSel":
        """Select central data register *index*."""
        return SrcSel(SrcKind.CDRF, index)

    @staticmethod
    def cprf(index: int) -> "SrcSel":
        """Select central predicate register *index*."""
        return SrcSel(SrcKind.CPRF, index)

    @staticmethod
    def imm(value: int) -> "SrcSel":
        """Select a configuration immediate."""
        return SrcSel(SrcKind.IMM, value)

    def with_init(self, init: int) -> "SrcSel":
        """Return a phi variant of this selection with first-iteration *init*."""
        return SrcSel(self.kind, self.value, init)


class DstKind(enum.Enum):
    """Write-back targets besides the implicit output latch."""

    LRF = "lrf"
    CDRF = "cdrf"
    CPRF = "cprf"


@dataclass(frozen=True)
class DstSel:
    """One optional write-back of the operation result.

    ``last_iteration_only`` restricts the write to the operation's final
    iteration — the standard way live-out values leave a software
    pipeline.
    """

    kind: DstKind
    index: int
    last_iteration_only: bool = False


@dataclass(frozen=True)
class CgaOp:
    """One operation slot of one unit in one configuration context."""

    opcode: Opcode
    srcs: Tuple[SrcSel, ...] = ()
    dsts: Tuple[DstSel, ...] = ()
    stage: int = 0
    pred: Optional[SrcSel] = None
    pred_negate: bool = False


@dataclass
class CgaContext:
    """One configuration-memory word: the ops of all active units."""

    ops: Dict[int, CgaOp] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.ops)


@dataclass(frozen=True)
class Preload:
    """Copy a central register into a unit's local RF at kernel entry.

    This is how loop-invariant live-ins reach units without central-RF
    ports; it models the paper's "VLIW code [that] takes care of ...
    setting up the data for the CGA loop" and costs setup cycles.
    """

    fu: int
    lrf_index: int
    cdrf_reg: int


@dataclass
class CgaKernel:
    """A compiled, modulo-scheduled loop.

    Attributes
    ----------
    ii:
        Initiation interval; equals ``len(contexts)``.
    stage_count:
        Number of software-pipeline stages; the kernel runs for
        ``(trip_count + stage_count - 1) * ii`` cycles.
    trip_count_reg:
        CDRF register read at kernel entry for the iteration count; a
        fixed ``trip_count`` may be given instead for kernels with
        compile-time trip counts.
    preloads:
        Loop-invariant values copied into local register files at kernel
        entry (costing setup cycles).
    """

    name: str
    ii: int
    stage_count: int
    contexts: List[CgaContext]
    trip_count: Optional[int] = None
    trip_count_reg: Optional[int] = None
    preloads: List[Preload] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.contexts) != self.ii:
            raise ValueError(
                "kernel %s: %d contexts for II=%d"
                % (self.name, len(self.contexts), self.ii)
            )
        if self.trip_count is None and self.trip_count_reg is None:
            raise ValueError("kernel %s: no trip count source" % self.name)

    @property
    def ops_per_iteration(self) -> int:
        """Number of operation slots across all contexts (one iteration)."""
        return sum(len(ctx) for ctx in self.contexts)

    @property
    def context_words(self) -> int:
        """Configuration words per context (for DMA/power accounting).

        One context encodes, per active unit, an opcode + mux selects +
        write-back fields; we account one 32-bit word per active unit
        plus one control word.
        """
        return max(len(ctx) for ctx in self.contexts) + 1


@dataclass
class VliwBundle:
    """One VLIW instruction word: up to ``width`` slot instructions."""

    slots: Tuple[Optional[Instruction], ...]

    def __post_init__(self) -> None:
        if not self.slots:
            raise ValueError("empty bundle")

    @property
    def width(self) -> int:
        return len(self.slots)

    def __iter__(self):
        return iter(self.slots)


@dataclass
class Program:
    """A complete executable: VLIW stream + CGA kernels + initial data."""

    bundles: List[VliwBundle]
    kernels: Dict[int, CgaKernel] = field(default_factory=dict)
    name: str = "program"

    def kernel_by_name(self, name: str) -> CgaKernel:
        """Look up a kernel by its symbolic name."""
        for kernel in self.kernels.values():
            if kernel.name == name:
                return kernel
        raise KeyError(name)


def patch_constants(program: Program, mapping: Dict[int, int]) -> Program:
    """Clone *program* with selected immediates replaced.

    *mapping* maps sentinel immediate values to their replacements, in
    CGA configuration words (``IMM`` source selections and phi ``init``
    immediates) and VLIW instruction operands alike.  This is the
    configuration-patching step of the paper's toolflow: a kernel is
    compiled once against distinctive placeholder constants and the
    per-packet values are written into the configuration immediates
    before launch, which cannot perturb the schedule because operation
    placement and routing never depend on immediate *values*.

    The input program is not modified; untouched kernels and bundles are
    shared between the clone and the original.
    """
    if not mapping:
        return program

    def patch_src(sel: Optional[SrcSel]) -> Optional[SrcSel]:
        if sel is None:
            return None
        value = sel.value
        if sel.kind is SrcKind.IMM and value in mapping:
            value = mapping[value]
        init = sel.init
        if init is not None and init in mapping:
            init = mapping[init]
        if value == sel.value and init == sel.init:
            return sel
        return SrcSel(sel.kind, value, init)

    kernels: Dict[int, CgaKernel] = {}
    for kid, kernel in program.kernels.items():
        changed = False
        contexts: List[CgaContext] = []
        for ctx in kernel.contexts:
            ops: Dict[int, CgaOp] = {}
            for fu, op in ctx.ops.items():
                srcs = tuple(patch_src(s) for s in op.srcs)
                pred = patch_src(op.pred)
                if srcs != op.srcs or pred != op.pred:
                    changed = True
                    op = CgaOp(op.opcode, srcs, op.dsts, op.stage, pred, op.pred_negate)
                ops[fu] = op
            contexts.append(CgaContext(ops))
        if changed:
            kernels[kid] = CgaKernel(
                name=kernel.name,
                ii=kernel.ii,
                stage_count=kernel.stage_count,
                contexts=contexts,
                trip_count=kernel.trip_count,
                trip_count_reg=kernel.trip_count_reg,
                preloads=list(kernel.preloads),
            )
        else:
            kernels[kid] = kernel

    bundles: List[VliwBundle] = []
    for bundle in program.bundles:
        slots = []
        changed = False
        for inst in bundle.slots:
            if inst is not None and any(
                isinstance(s, Imm) and s.value in mapping for s in inst.srcs
            ):
                changed = True
                srcs = tuple(
                    Imm(mapping[s.value])
                    if isinstance(s, Imm) and s.value in mapping
                    else s
                    for s in inst.srcs
                )
                inst = Instruction(
                    inst.opcode,
                    dst=inst.dst,
                    srcs=srcs,
                    pred=inst.pred,
                    pred_negate=inst.pred_negate,
                )
            slots.append(inst)
        bundles.append(VliwBundle(tuple(slots)) if changed else bundle)

    return Program(bundles=bundles, kernels=kernels, name=program.name)
