"""Register file models with port-pressure checking and access counting."""

from __future__ import annotations

from typing import List, Optional

from repro.sim.stats import ActivityStats


class PortOverflowError(Exception):
    """Raised when a cycle uses more ports than the register file has.

    The compiler is responsible for never exceeding port counts; the
    simulator checks and raises, so scheduling bugs surface as hard
    errors instead of silently optimistic timing.
    """


class RegisterFile:
    """The central data register file (CDRF): 64 x 64-bit, 6R/3W.

    Port usage is tracked per cycle via :meth:`begin_cycle`; reads and
    writes beyond the port budget raise :class:`PortOverflowError`.
    """

    def __init__(
        self,
        entries: int = 64,
        width: int = 64,
        read_ports: int = 6,
        write_ports: int = 3,
        stats: Optional[ActivityStats] = None,
        stat_prefix: str = "cdrf",
    ) -> None:
        self.entries = entries
        self.width = width
        self.read_ports = read_ports
        self.write_ports = write_ports
        self._mask = (1 << width) - 1
        self._regs: List[int] = [0] * entries
        self._reads_this_cycle = 0
        self._writes_this_cycle = 0
        self.stats = stats if stats is not None else ActivityStats()
        self._stat_prefix = stat_prefix

    def begin_cycle(self) -> None:
        """Reset per-cycle port usage (call once per simulated clock)."""
        self._reads_this_cycle = 0
        self._writes_this_cycle = 0

    def read(self, index: int) -> int:
        """Read register *index* through one read port."""
        self._reads_this_cycle += 1
        if self._reads_this_cycle > self.read_ports:
            raise PortOverflowError(
                "%s: %d reads in one cycle exceeds %d ports"
                % (self._stat_prefix, self._reads_this_cycle, self.read_ports)
            )
        setattr(
            self.stats,
            self._stat_prefix + "_reads",
            getattr(self.stats, self._stat_prefix + "_reads") + 1,
        )
        return self._regs[index]

    def write(self, index: int, value: int) -> None:
        """Write register *index* through one write port."""
        self._writes_this_cycle += 1
        if self._writes_this_cycle > self.write_ports:
            raise PortOverflowError(
                "%s: %d writes in one cycle exceeds %d ports"
                % (self._stat_prefix, self._writes_this_cycle, self.write_ports)
            )
        setattr(
            self.stats,
            self._stat_prefix + "_writes",
            getattr(self.stats, self._stat_prefix + "_writes") + 1,
        )
        self._regs[index] = value & self._mask

    def peek(self, index: int) -> int:
        """Debug read that does not consume a port or count an access."""
        return self._regs[index]

    def poke(self, index: int, value: int) -> None:
        """Debug write that does not consume a port or count an access."""
        self._regs[index] = value & self._mask


class PredicateFile(RegisterFile):
    """The central predicate register file (CPRF): 64 x 1-bit."""

    def __init__(self, stats: Optional[ActivityStats] = None) -> None:
        super().__init__(
            entries=64,
            width=1,
            read_ports=6,
            write_ports=3,
            stats=stats,
            stat_prefix="cprf",
        )


class LocalRegisterFile:
    """A CGA unit's private 2R/1W register file.

    Port checking is simpler here: the CGA context format can encode at
    most two local reads and one local write per unit per cycle, so the
    context decoder enforces the limit structurally; the model just
    counts accesses for the power model.
    """

    def __init__(
        self, entries: int = 8, width: int = 64, stats: Optional[ActivityStats] = None
    ) -> None:
        self.entries = entries
        self.width = width
        self._mask = (1 << width) - 1
        self._regs: List[int] = [0] * entries
        self.stats = stats if stats is not None else ActivityStats()

    def read(self, index: int) -> int:
        """Read one entry (counted as local-RF traffic)."""
        self.stats.lrf_reads += 1
        return self._regs[index]

    def write(self, index: int, value: int) -> None:
        """Write one entry (counted as local-RF traffic)."""
        self.stats.lrf_writes += 1
        self._regs[index] = value & self._mask

    def peek(self, index: int) -> int:
        """Debug read without statistics."""
        return self._regs[index]
