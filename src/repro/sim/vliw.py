"""VLIW-mode execution engine: 3-issue, in-order, scoreboarded.

The engine executes :class:`~repro.sim.program.VliwBundle` streams:

* bundles issue in order; a bundle waits until every source register it
  reads is ready (scoreboard interlock covers multi-cycle latencies and
  variable load latency from L1 bank contention);
* instruction fetch goes through the I$ timing model; misses stall;
* taken branches pay the Table 1 latency (2 absolute / 3 PC-relative)
  as dead cycles; not-taken (squashed) branches pay nothing;
* predication reads the CPRF; squashed operations have no architectural
  effect and are counted separately.

The engine stops when it reaches a ``cga`` instruction (handing the
kernel id to the core), a ``halt``, or the end of the bundle stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.isa.bits import MASK32
from repro.isa.instruction import Imm, Instruction, PredReg, Reg
from repro.isa.opcodes import Opcode, OpGroup, group_of, latency_of
from repro.isa.semantics import execute as exec_semantics
from repro.sim import codegen, memops
from repro.sim.decode import (
    KIND_BRANCH,
    KIND_DATAFLOW,
    KIND_LOAD,
    KIND_STORE,
    DecodedBundle,
    decode_bundle,
)
from repro.sim.icache import InstructionCache
from repro.sim.memory import Scratchpad
from repro.sim.program import VliwBundle
from repro.sim.regfile import PredicateFile, RegisterFile
from repro.sim.stats import ActivityStats
from repro.trace.events import StallCause
from repro.trace.tracer import NULL_TRACER, Tracer


class VliwFault(Exception):
    """Raised on malformed VLIW code (bad operands, slot capability)."""


@dataclass
class StopEvent:
    """Why the engine returned control to the core."""

    reason: str  # "cga", "halt", "end"
    kernel_id: Optional[int] = None
    next_pc: int = 0


class VliwEngine:
    """Executes the VLIW instruction stream of a program."""

    def __init__(
        self,
        bundles: List[VliwBundle],
        cdrf: RegisterFile,
        cprf: PredicateFile,
        scratchpad: Scratchpad,
        icache: InstructionCache,
        stats: ActivityStats,
        slot_fus: Optional[List[int]] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.bundles = bundles
        self.cdrf = cdrf
        self.cprf = cprf
        self.scratchpad = scratchpad
        self.icache = icache
        self.stats = stats
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: FU index behind each issue slot (for per-FU op accounting).
        self.slot_fus = slot_fus if slot_fus is not None else [0, 1, 2]
        #: Scoreboard: register index -> cycle at which the value is usable.
        self._reg_ready: Dict[int, int] = {}
        self._pred_ready: Dict[int, int] = {}
        #: Lazily filled per-PC decoded-bundle cache (parallel to
        #: ``bundles``; rebuilt if the stream length changes).
        self._decoded: List[Optional[DecodedBundle]] = []
        #: Per-PC compiled-segment cache (parallel to ``bundles``):
        #: ``None`` = not tried, ``False`` = refused (decoded fallback),
        #: else ``(fn, imms)`` covering the segment starting at that PC.
        self._compiled: List[object] = []
        #: When False, :meth:`run` uses the reference interpreter
        #: (:meth:`run_reference`) instead of the decoded fast path.
        self.use_decoded = True
        #: When True (and ``use_decoded``), :meth:`run` prefers compiled
        #: straight-line segments (:mod:`repro.sim.codegen`).
        self.use_compiled = False

    # ------------------------------------------------------------------

    def _src_value(self, operand, cycle: int) -> int:
        if isinstance(operand, Reg):
            return self.cdrf.read(operand.index)
        if isinstance(operand, PredReg):
            return self.cprf.read(operand.index)
        if isinstance(operand, Imm):
            # Two's-complement encode negative immediates into 64 bits.
            return operand.value & ((1 << 64) - 1)
        raise VliwFault("bad VLIW operand: %r" % (operand,))

    def _ready_cycle(self, inst: Instruction) -> int:
        """Earliest cycle at which every source (and guard) of *inst* is ready."""
        ready = 0
        for operand in inst.srcs:
            if isinstance(operand, Reg):
                ready = max(ready, self._reg_ready.get(operand.index, 0))
            elif isinstance(operand, PredReg):
                ready = max(ready, self._pred_ready.get(operand.index, 0))
        if inst.pred is not None and isinstance(inst.pred, PredReg):
            ready = max(ready, self._pred_ready.get(inst.pred.index, 0))
        return ready

    def _guard_passes(self, inst: Instruction) -> bool:
        if inst.pred is None:
            return True
        value = self.cprf.read(inst.pred.index)
        return bool(value) != inst.pred_negate

    # ------------------------------------------------------------------

    def run(
        self, start_pc: int, start_cycle: int, max_cycle: Optional[int] = None
    ) -> Tuple[StopEvent, int]:
        """Execute from *start_pc*; returns (stop event, cycle after stop).

        Dispatches to the selected interpreter tier: the reference
        per-cycle loop, the decoded fast path, or compiled straight-line
        segments (which themselves fall back to decoded per segment when
        codegen refuses a construct).  All tiers are bit-identical.
        """
        if not self.use_decoded:
            return self.run_reference(start_pc, start_cycle, max_cycle)
        if self.use_compiled:
            return self.run_compiled(start_pc, start_cycle, max_cycle)
        return self.run_decoded(start_pc, start_cycle, max_cycle)

    def run_compiled(
        self, start_pc: int, start_cycle: int, max_cycle: Optional[int] = None
    ) -> Tuple[StopEvent, int]:
        """Compiled tier: one generated function per branch-free segment.

        Each segment (straight-line bundles through the first branch or
        control instruction) is compiled once via
        :func:`repro.sim.codegen.vliw_runner` and cached per start PC; a
        refused segment is pinned to the decoded tier.  Bit-identical to
        :meth:`run_decoded` / :meth:`run_reference`.
        """
        bundles = self.bundles
        n_bundles = len(bundles)
        cache = self._compiled
        if len(cache) != n_bundles:
            cache = self._compiled = [None] * n_bundles
        pc = start_pc
        cycle = start_cycle
        while 0 <= pc < n_bundles:
            entry = cache[pc]
            if entry is False:
                return self.run_decoded(pc, cycle, max_cycle)
            if entry is None:
                try:
                    entry = codegen.vliw_runner(
                        bundles, pc, self.slot_fus, self.cdrf, self.cprf, VliwFault
                    )
                except codegen.CodegenUnsupported:
                    cache[pc] = False
                    return self.run_decoded(pc, cycle, max_cycle)
                cache[pc] = entry
            fn, imms = entry
            stop, pc, cycle = fn(
                cycle,
                max_cycle,
                imms,
                self.cdrf._regs,
                self.cprf._regs,
                self._reg_ready,
                self._pred_ready,
                self.icache.fetch,
                self.scratchpad.timed_read,
                self.scratchpad.timed_write,
                self.stats,
                self.tracer,
            )
            if stop is not None:
                return stop, cycle
        return StopEvent("end", next_pc=pc), cycle

    def run_decoded(
        self, start_pc: int, start_cycle: int, max_cycle: Optional[int] = None
    ) -> Tuple[StopEvent, int]:
        """Decoded fast path: each bundle is lowered once on first fetch
        (:mod:`repro.sim.decode`) and replayed from the cache afterwards
        — scoreboard source lists, branch targets, operand readers and
        semantic handlers are all pre-resolved.  Bit-identical to
        :meth:`run_reference`.  Raises :class:`VliwFault` when
        *max_cycle* is exceeded (runaway loop protection).
        """
        bundles = self.bundles
        n_bundles = len(bundles)
        cache = self._decoded
        if len(cache) != n_bundles:
            cache = self._decoded = [None] * n_bundles
        pc = start_pc
        cycle = start_cycle
        stats = self.stats
        tracer = self.tracer
        cdrf = self.cdrf
        cprf = self.cprf
        cdrf_begin = cdrf.begin_cycle
        cprf_begin = cprf.begin_cycle
        cprf_read = cprf.read
        reg_ready = self._reg_ready
        pred_ready = self._pred_ready
        icache_fetch = self.icache.fetch
        timed_read = self.scratchpad.timed_read
        timed_write = self.scratchpad.timed_write
        fu_ops = stats.fu_ops
        op_groups = stats.op_groups
        slot_fus = self.slot_fus
        vliw_cycles = 0
        vliw_ops = 0
        squashed = 0
        writebacks: List[Tuple[Optional[int], bool, int, int]] = []
        try:
            while 0 <= pc < n_bundles:
                if max_cycle is not None and cycle > max_cycle:
                    raise VliwFault("exceeded %d cycles in VLIW mode" % max_cycle)
                db = cache[pc]
                if db is None:
                    db = decode_bundle(pc, bundles[pc], cdrf, cprf, slot_fus, VliwFault)
                    cache[pc] = db
                # Instruction fetch.
                miss = icache_fetch(pc, cycle)
                if miss:
                    stats.add_stall(StallCause.ICACHE_MISS, miss)
                    vliw_cycles += miss
                    cycle += miss
                # Scoreboard interlock over the hoisted source lists.
                need = 0
                for index in db.need_regs:
                    ready = reg_ready.get(index, 0)
                    if ready > need:
                        need = ready
                for index in db.need_preds:
                    ready = pred_ready.get(index, 0)
                    if ready > need:
                        need = ready
                if need > cycle:
                    wait = need - cycle
                    stats.add_stall(StallCause.INTERLOCK, wait)
                    vliw_cycles += wait
                    if tracer.enabled:
                        tracer.instant(
                            "stall.interlock",
                            cycle,
                            cat="stall",
                            args={"pc": pc, "cycles": wait},
                        )
                    cycle = need
                # Issue.
                cdrf_begin()
                cprf_begin()
                taken = False
                target = 0
                branch_latency = 0
                stop: Optional[StopEvent] = None
                del writebacks[:]
                for di in db.insts:
                    pred_index = di.pred_index
                    if pred_index is not None:
                        if (cprf_read(pred_index) != 0) == di.pred_negate:
                            squashed += 1
                            continue
                    weight = di.weight
                    fu_ops[di.fu] += weight
                    op_groups[di.group] += weight
                    vliw_ops += weight
                    kind = di.kind
                    if kind == KIND_DATAFLOW:
                        writebacks.append(
                            (di.wb_index, di.wb_is_pred, di.compute(), cycle + di.latency)
                        )
                    elif kind == KIND_LOAD:
                        base = di.base_reader() & MASK32
                        off_reader = di.off_reader
                        if off_reader is None:
                            addr = (base + di.off_const) & MASK32
                        else:
                            addr = (base + (off_reader() & MASK32)) & MASK32
                        raw, extra = timed_read(cycle, addr, di.mem_size)
                        writebacks.append(
                            (
                                di.wb_index,
                                di.wb_is_pred,
                                di.load_convert(raw),
                                cycle + di.latency + extra,
                            )
                        )
                    elif kind == KIND_STORE:
                        base = di.base_reader() & MASK32
                        addr = (base + di.off_const) & MASK32
                        timed_write(
                            cycle, addr, di.store_reader() & di.store_mask, di.mem_size
                        )
                    elif kind == KIND_BRANCH:
                        taken = True
                        branch_latency = di.latency
                        if di.target_reg is not None:
                            target = cdrf.read(di.target_reg) & MASK32
                        else:
                            target = di.target_const
                        if di.link_index is not None:
                            cdrf.write(di.link_index, pc + 1)
                            reg_ready[di.link_index] = cycle + di.latency
                    else:  # control
                        if di.opcode is Opcode.CGA:
                            stop = StopEvent("cga", kernel_id=di.kernel_id, next_pc=pc + 1)
                        elif di.opcode is Opcode.HALT:
                            stop = StopEvent("halt", next_pc=pc + 1)
                # Write-back phase (two-phase so intra-bundle reads see
                # old values).
                for wb_index, wb_is_pred, value, ready in writebacks:
                    if wb_index is None:
                        continue
                    if wb_is_pred:
                        cprf.write(wb_index, value & 1)
                        pred_ready[wb_index] = ready
                    else:
                        cdrf.write(wb_index, value)
                        reg_ready[wb_index] = ready
                vliw_cycles += 1
                cycle += 1
                if stop is not None:
                    return stop, cycle
                if taken:
                    dead = branch_latency - 1
                    stats.add_stall(StallCause.BRANCH, dead)
                    vliw_cycles += dead
                    if tracer.enabled:
                        tracer.instant(
                            "stall.branch",
                            cycle,
                            cat="stall",
                            args={"pc": pc, "target": target, "cycles": dead},
                        )
                    cycle += dead
                    pc = target
                else:
                    pc += 1
            return StopEvent("end", next_pc=pc), cycle
        finally:
            stats.vliw_cycles += vliw_cycles
            stats.vliw_ops += vliw_ops
            stats.squashed_ops += squashed

    # ------------------------------------------------------------------

    def run_reference(
        self, start_pc: int, start_cycle: int, max_cycle: Optional[int] = None
    ) -> Tuple[StopEvent, int]:
        """Reference interpreter: the original per-cycle re-decoding loop.

        Kept as the ground truth the decoded fast path is differentially
        tested against.  Raises :class:`VliwFault` when *max_cycle* is
        exceeded (runaway loop protection).
        """
        pc = start_pc
        cycle = start_cycle
        n_bundles = len(self.bundles)
        while 0 <= pc < n_bundles:
            if max_cycle is not None and cycle > max_cycle:
                raise VliwFault("exceeded %d cycles in VLIW mode" % max_cycle)
            bundle = self.bundles[pc]
            # Instruction fetch.
            miss = self.icache.fetch(pc, cycle)
            if miss:
                self.stats.add_stall(StallCause.ICACHE_MISS, miss)
                self.stats.vliw_cycles += miss
                cycle += miss
            # Scoreboard interlock: the whole bundle waits for its sources.
            need = 0
            for inst in bundle:
                if inst is not None and inst.opcode is not Opcode.NOP:
                    need = max(need, self._ready_cycle(inst))
            if need > cycle:
                wait = need - cycle
                self.stats.add_stall(StallCause.INTERLOCK, wait)
                self.stats.vliw_cycles += wait
                if self.tracer.enabled:
                    self.tracer.instant(
                        "stall.interlock",
                        cycle,
                        cat="stall",
                        args={"pc": pc, "cycles": wait},
                    )
                cycle = wait + cycle
            # Issue.
            self.cdrf.begin_cycle()
            self.cprf.begin_cycle()
            taken_branch: Optional[Tuple[int, int]] = None  # (target, latency)
            stop: Optional[StopEvent] = None
            writebacks: List[Tuple[Instruction, int, int]] = []  # inst, value, ready
            for slot, inst in enumerate(bundle):
                if inst is None or inst.opcode is Opcode.NOP:
                    continue
                if not self._guard_passes(inst):
                    self.stats.squashed_ops += 1
                    continue
                group = group_of(inst.opcode)
                fu = self.slot_fus[slot] if slot < len(self.slot_fus) else slot
                self.stats.count_op(fu, inst.opcode, in_cga=False)
                if group is OpGroup.CONTROL:
                    if inst.opcode is Opcode.CGA:
                        kid = inst.srcs[0].value if inst.srcs else 0
                        stop = StopEvent("cga", kernel_id=kid, next_pc=pc + 1)
                    elif inst.opcode is Opcode.HALT:
                        stop = StopEvent("halt", next_pc=pc + 1)
                    continue
                if group is OpGroup.BRANCH:
                    taken_branch = self._exec_branch(inst, pc, cycle)
                    continue
                if group is OpGroup.LDMEM:
                    writebacks.append(self._exec_load(inst, cycle))
                    continue
                if group is OpGroup.STMEM:
                    self._exec_store(inst, cycle)
                    continue
                srcs = [self._src_value(s, cycle) for s in inst.srcs]
                value = exec_semantics(inst.opcode, srcs)
                writebacks.append((inst, value, cycle + latency_of(inst.opcode)))
            # Write-back phase (two-phase so intra-bundle reads see old values).
            for inst, value, ready in writebacks:
                self._write_dst(inst, value, ready)
            self.stats.vliw_cycles += 1
            cycle += 1
            if stop is not None:
                return stop, cycle
            if taken_branch is not None:
                target, latency = taken_branch
                dead = latency - 1
                self.stats.add_stall(StallCause.BRANCH, dead)
                self.stats.vliw_cycles += dead
                if self.tracer.enabled:
                    self.tracer.instant(
                        "stall.branch",
                        cycle,
                        cat="stall",
                        args={"pc": pc, "target": target, "cycles": dead},
                    )
                cycle += dead
                pc = target
            else:
                pc += 1
        return StopEvent("end", next_pc=pc), cycle

    # ------------------------------------------------------------------

    def _write_dst(self, inst: Instruction, value: int, ready: int) -> None:
        dst = inst.dst
        if dst is None:
            return
        if isinstance(dst, Reg):
            self.cdrf.write(dst.index, value)
            self._reg_ready[dst.index] = ready
        elif isinstance(dst, PredReg):
            self.cprf.write(dst.index, value & 1)
            self._pred_ready[dst.index] = ready
        else:
            raise VliwFault("bad VLIW destination: %r" % (dst,))

    def _exec_branch(self, inst: Instruction, pc: int, cycle: int) -> Tuple[int, int]:
        op = inst.opcode
        latency = latency_of(op)
        if op in (Opcode.JMP, Opcode.JMPL):
            target_src = inst.srcs[0]
            target = (
                target_src.value
                if isinstance(target_src, Imm)
                else self.cdrf.read(target_src.index) & MASK32
            )
        else:  # br / brl: PC-relative in bundle units
            offset = inst.srcs[0]
            if not isinstance(offset, Imm):
                raise VliwFault("relative branch needs an immediate offset")
            target = pc + 1 + offset.value
        if op in (Opcode.JMPL, Opcode.BRL):
            link = inst.dst if inst.dst is not None else Reg(9)
            self.cdrf.write(link.index, pc + 1)
            self._reg_ready[link.index] = cycle + latency
        return target, latency

    def _exec_load(self, inst: Instruction, cycle: int) -> Tuple[Instruction, int, int]:
        base_op, off_op = inst.srcs[0], inst.srcs[1]
        base = self._src_value(base_op, cycle) & MASK32
        offset_is_imm = isinstance(off_op, Imm)
        offset = off_op.value if offset_is_imm else self._src_value(off_op, cycle) & MASK32
        addr = memops.effective_address(inst.opcode, base, offset, offset_is_imm)
        info = memops.mem_info(inst.opcode)
        raw, extra = self.scratchpad.timed_read(cycle, addr, info.size)
        value = memops.load_result(inst.opcode, raw)
        return inst, value, cycle + latency_of(inst.opcode) + extra

    def _exec_store(self, inst: Instruction, cycle: int) -> None:
        base_op, off_op, val_op = inst.srcs
        base = self._src_value(base_op, cycle) & MASK32
        if not isinstance(off_op, Imm):
            raise VliwFault("stores use immediate offsets (Table 1)")
        addr = memops.effective_address(inst.opcode, base, off_op.value, True)
        value = self._src_value(val_op, cycle)
        raw, size = memops.store_payload(inst.opcode, value)
        self.scratchpad.timed_write(cycle, addr, raw, size)
