"""Shared load/store semantics (addressing, widths, sign handling).

Both execution modes (VLIW and CGA) funnel memory operations through
these helpers so that addressing semantics match Table 1 exactly in one
place:

* byte loads/stores use unscaled offsets;
* halfword accesses scale *immediate* offsets by 2 (``imm << 1``);
* word and 64-bit accesses scale immediate offsets by 4;
* register offsets are always byte offsets (the compiler pre-scales).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.isa.bits import MASK32, sext, to_unsigned
from repro.isa.opcodes import Opcode


@dataclass(frozen=True)
class MemOpInfo:
    """Width/sign/scale attributes of one memory opcode."""

    size: int  # bytes moved
    signed: bool  # sign-extend loads
    imm_scale: int  # left-shift applied to immediate offsets


_MEM_INFO = {
    Opcode.LD_UC: MemOpInfo(1, False, 0),
    Opcode.LD_C: MemOpInfo(1, True, 0),
    Opcode.LD_UC2: MemOpInfo(2, False, 1),
    Opcode.LD_C2: MemOpInfo(2, True, 1),
    Opcode.LD_I: MemOpInfo(4, False, 2),
    Opcode.LD_Q: MemOpInfo(8, False, 2),
    Opcode.ST_C: MemOpInfo(1, False, 0),
    Opcode.ST_C2: MemOpInfo(2, False, 1),
    Opcode.ST_I: MemOpInfo(4, False, 2),
    Opcode.ST_Q: MemOpInfo(8, False, 2),
}


def mem_info(op: Opcode) -> MemOpInfo:
    """Return the width/sign/scale attributes of memory opcode *op*."""
    return _MEM_INFO[op]


def effective_address(op: Opcode, base: int, offset: int, offset_is_imm: bool) -> int:
    """Compute the byte address of a memory operation.

    *base* and *offset* are raw register/immediate values; only the low
    32 bits participate in address arithmetic.
    """
    info = _MEM_INFO[op]
    if offset_is_imm:
        offset = offset << info.imm_scale
    return (base + offset) & MASK32


def load_result(op: Opcode, raw: int) -> int:
    """Convert a raw little-endian load into the architectural register value.

    Sub-word loads extend to 32 bits (zero or sign per the opcode) and
    the upper 32 bits of the destination are cleared; ``ld_q`` fills the
    full 64-bit register.
    """
    info = _MEM_INFO[op]
    if info.size == 8:
        return raw
    width = info.size * 8
    if info.signed:
        return sext(raw, width, 32)
    return raw & ((1 << width) - 1)


def store_payload(op: Opcode, value: int) -> Tuple[int, int]:
    """Return ``(raw_value, size_bytes)`` for a store of *value*."""
    info = _MEM_INFO[op]
    return to_unsigned(value, info.size * 8), info.size
