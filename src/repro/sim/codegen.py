"""Tier-3 interpreter: compile steady-state loops to specialized Python.

The decoded tier (:mod:`repro.sim.decode`) removed per-cycle re-decoding
but still pays one closure call per operand read and one per operation
per simulated cycle.  This module removes the remaining dispatch: per
``(kernel, architecture-fingerprint)`` it emits Python *source* for the
whole CGA steady-state window — the ``II`` contexts unrolled into
straight-line code with the output latches and hot counters as locals,
predication and the 4x16 SIMD lane maths inlined, and the commit ring
replaced by per-operation shift registers whose commits are scheduled
statically — plus straight-line runs of VLIW bundles (one generated
function per branch-free segment).

Caching is two-level, exactly like the modulo-schedule cache in
:mod:`repro.compiler.linker`:

* an in-memory source + compiled-function cache keyed by the structural
  kernel/segment signature and :meth:`CgaArchitecture.fingerprint` (the
  signature excludes immediate *values*, so ``patch_constants`` variants
  share one compiled artifact and differ only in the immediate pool
  passed at call time);
* a persistent directory of pickled sources living next to the schedule
  cache (``configure_schedule_cache`` / ``REPRO_SCHEDULE_CACHE``), with
  the same atomic-write and corruption-reads-as-miss discipline, so a
  fresh process or a forked fabric worker performs zero codegen.

Correctness contract: for every well-formed program the compiled tier
produces bit-identical architectural state, cycle counts and
:class:`~repro.sim.stats.ActivityStats` (per-cause stall counters
included) to both the decoded and the reference tiers
(``tests/sim/test_differential.py`` runs all three).  Central-RF port
pressure, which the decoded tier checks dynamically through
:class:`~repro.sim.regfile.RegisterFile`, is checked *statically* at
generation time; a kernel or bundle whose worst case could overflow the
ports raises :class:`CodegenUnsupported` and the engine silently falls
back to the decoded tier for that kernel (keeping the dynamic check).
"""

from __future__ import annotations

import hashlib
import os
import pickle
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.arch.config import CgaArchitecture
from repro.isa.bits import MASK64
from repro.isa.instruction import Imm, PredReg, Reg
from repro.isa.opcodes import (
    MAX_OP_LATENCY,
    Opcode,
    OpGroup,
    group_of,
    latency_of,
    op_weight,
)
from repro.isa.semantics import DATAFLOW_GROUPS, UNARY_SIMD, handler_for, operand_count
from repro.sim import memops
from repro.sim.memory import MemoryError_
from repro.sim.program import CgaKernel, DstKind, SrcKind, SrcSel, VliwBundle
from repro.trace.events import StallCause
from repro.trace.tracer import get_tracer


class CodegenUnsupported(Exception):
    """The construct cannot be compiled with static port-pressure proof;
    the engine falls back to the decoded tier (which checks dynamically)."""


#: Sentinel marking an empty shift-register slot in generated code.  It
#: lives only in this process (generated *source* is what gets persisted,
#: never the sentinel), so identity checks are safe.
_ABSENT = object()

#: On-disk payload format version; bump when the generated-source shape
#: or the call protocol of the generated functions changes.
_DISK_FORMAT = 3

_SOURCE_CACHE: Dict[tuple, str] = {}
_FN_CACHE: Dict[tuple, Callable] = {}
_STATS = {"compilations": 0, "memory_hits": 0, "disk_hits": 0}


def codegen_stats() -> Dict[str, int]:
    """Counters since the last :func:`clear_codegen_cache`.

    ``compilations`` counts source *generations* (the expensive step a
    warm disk cache eliminates); memory/disk hits count reuses.
    """
    return dict(_STATS)


def clear_codegen_cache() -> None:
    """Drop the in-memory source/function caches (disk is untouched)."""
    _SOURCE_CACHE.clear()
    _FN_CACHE.clear()
    for key in _STATS:
        _STATS[key] = 0


# ----------------------------------------------------------------------
# Persistent second level, sharing the schedule-cache directory.
# ----------------------------------------------------------------------


def _disk_path(directory: str, key: tuple) -> str:
    """Content-addressed file name: SHA-256 of the key's canonical repr."""
    digest = hashlib.sha256(repr(key).encode("utf-8")).hexdigest()
    return os.path.join(directory, digest + ".codegen.pkl")


def _load_disk_source(path: str, key: tuple) -> Optional[str]:
    """Read one cache file; any corruption reads as a miss, never a crash."""
    try:
        with open(path, "rb") as fh:
            payload = pickle.load(fh)
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
            ImportError, IndexError, MemoryError, ValueError, TypeError):
        return None
    if not isinstance(payload, dict) or payload.get("format") != _DISK_FORMAT:
        return None
    if payload.get("key") != key:
        return None
    source = payload.get("source")
    return source if isinstance(source, str) else None


def _store_disk_source(path: str, key: tuple, source: str) -> None:
    """Atomic write (tmp + rename) so readers never see a torn file."""
    try:
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = "%s.tmp.%d" % (path, os.getpid())
        with open(tmp, "wb") as fh:
            pickle.dump({"format": _DISK_FORMAT, "key": key, "source": source}, fh)
        os.replace(tmp, path)
    except OSError:
        pass  # a read-only or full disk must never fail execution


def _cached_source(key: tuple, kind: str, label: str, generate: Callable[[], str]) -> str:
    """Two-level lookup of generated source; mirrors ``_schedule_cached``."""
    from repro.compiler.linker import schedule_cache_dir

    directory = schedule_cache_dir()
    source = _SOURCE_CACHE.get(key)
    if source is not None:
        _STATS["memory_hits"] += 1
        if directory is not None:
            path = _disk_path(directory, key)
            if not os.path.exists(path):
                _store_disk_source(path, key, source)
        return source
    if directory is not None:
        path = _disk_path(directory, key)
        source = _load_disk_source(path, key)
        if source is not None:
            _STATS["disk_hits"] += 1
            _SOURCE_CACHE[key] = source
            return source
    source = generate()
    _STATS["compilations"] += 1
    tracer = get_tracer()
    if tracer.enabled:
        tracer.instant(
            "codegen.compile.%s" % kind,
            tracer.tick(),
            cat="codegen",
            args={"name": label, "source_lines": source.count("\n")},
        )
    _SOURCE_CACHE[key] = source
    if directory is not None:
        _store_disk_source(_disk_path(directory, key), key, source)
    return source


def _base_namespace() -> Dict[str, object]:
    """The exec namespace every generated function closes over."""
    ns: Dict[str, object] = {"_A": _ABSENT}
    for group in OpGroup:
        ns["_G_%s" % group.name] = group
    ns["_BC"] = StallCause.BANK_CONFLICT
    ns["_IC"] = StallCause.ICACHE_MISS
    ns["_IL"] = StallCause.INTERLOCK
    ns["_BR"] = StallCause.BRANCH
    ns["_divs"] = handler_for(Opcode.DIV)
    ns["_divu"] = handler_for(Opcode.DIV_U)
    return ns


def _compiled_fn(key: tuple, source: str, fn_name: str, extra: Dict[str, object]) -> Callable:
    """``compile()`` + ``exec`` the source once per process, per key."""
    fn = _FN_CACHE.get(key)
    if fn is None:
        ns = _base_namespace()
        ns.update(extra)
        code = compile(source, "<repro.sim.codegen:%s>" % fn_name, "exec")
        exec(code, ns)
        fn = ns[fn_name]
        _FN_CACHE[key] = fn
    return fn


# ----------------------------------------------------------------------
# Inline memory model (batch mode only)
# ----------------------------------------------------------------------
#
# The per-packet tier reaches the scratchpad through bound methods
# (``Scratchpad.timed_read``/``timed_write``); the lane-batched tier
# inlines the same semantics — bounds check, per-bank busy clocks,
# conflict accounting — against per-lane ``_mem``/``_bank_next_free``
# views, so the geometry constants baked into the source must appear in
# the batch cache keys.  Counter locals (``n_l1r``/``n_l1w``/``n_bc``/
# ``bc_stall``) are flushed to the lane's ActivityStats exactly once.


def _emit_arbitrate(lines: List[str], ind: str, cycle_var: str,
                    addr_expr: str, n_banks: int, first: bool) -> None:
    """Inline ``Scratchpad._arbitrate``: serve at the bank's next free
    cycle, push the bank clock, count a conflict when delayed."""
    lines.append(ind + "bank = ((%s) >> 2) %% %d" % (addr_expr, n_banks))
    lines.append(ind + "serve = BNF[bank]")
    lines.append(ind + "if serve < %s:" % cycle_var)
    lines.append(ind + "    serve = %s" % cycle_var)
    lines.append(ind + "BNF[bank] = serve + 1")
    if first:
        lines.append(ind + "extra = serve - %s" % cycle_var)
        lines.append(ind + "if extra > 0:")
        lines.append(ind + "    n_bc += 1")
        lines.append(ind + "    bc_stall += extra")
    else:  # second word of a 64-bit access: delay is the max of both
        lines.append(ind + "d2 = serve - %s" % cycle_var)
        lines.append(ind + "if d2 > 0:")
        lines.append(ind + "    n_bc += 1")
        lines.append(ind + "    bc_stall += d2")
        lines.append(ind + "    if d2 > extra:")
        lines.append(ind + "        extra = d2")


def _emit_bounds_check(lines: List[str], ind: str, size: int, mem_bytes: int) -> None:
    # ``addr`` is pre-masked to 32 bits at every call site, so only the
    # upper bound can fail (same observable behaviour as ``_check``).
    lines.append(ind + "if addr + %d > %d:" % (size, mem_bytes))
    lines.append(
        ind + "    raise _ME('scratchpad access [%%d, %%d) outside %d bytes'"
        " %% (addr, addr + %d))" % (mem_bytes, size)
    )


def _emit_inline_read(lines: List[str], ind: str, cycle_var: str, size: int,
                      n_banks: int, mem_bytes: int, tally=None) -> None:
    """Inline ``Scratchpad.timed_read``: leaves ``raw`` and ``extra``.

    With *tally* (a counter dict), statically-known access counts are
    accumulated there instead of emitting per-access increments."""
    _emit_bounds_check(lines, ind, size, mem_bytes)
    _emit_arbitrate(lines, ind, cycle_var, "addr", n_banks, True)
    if size == 8:
        _emit_arbitrate(lines, ind, cycle_var, "addr + 4", n_banks, False)
    if tally is None:
        lines.append(ind + "n_l1r += %d" % (1 if size <= 4 else 2))
    else:
        tally["n_l1r"] += 1 if size <= 4 else 2
    lines.append(ind + "raw = _fb(M[addr:addr + %d], 'little')" % size)


def _emit_inline_write(lines: List[str], ind: str, cycle_var: str, size: int,
                       n_banks: int, mem_bytes: int, tally=None) -> None:
    """Inline ``Scratchpad.timed_write`` of pre-masked ``v_st``; leaves
    ``extra`` (the bank-conflict delay) for callers that account it."""
    _emit_bounds_check(lines, ind, size, mem_bytes)
    _emit_arbitrate(lines, ind, cycle_var, "addr", n_banks, True)
    if size == 8:
        _emit_arbitrate(lines, ind, cycle_var, "addr + 4", n_banks, False)
    if tally is None:
        lines.append(ind + "n_l1w += %d" % (1 if size <= 4 else 2))
    else:
        tally["n_l1w"] += 1 if size <= 4 else 2
    lines.append(ind + "M[addr:addr + %d] = v_st.to_bytes(%d, 'little')" % (size, size))


# ----------------------------------------------------------------------
# CGA: structural signature and immediate pool
# ----------------------------------------------------------------------
#
# The signature keys the cache; the pool carries everything the
# signature excludes (immediate and phi-init values) as runtime
# arguments.  Both walk the kernel in one canonical order (contexts in
# sequence, FUs sorted within a context, pred before srcs within an op)
# so a signature hit guarantees pool-slot agreement.


def _iter_cga_ops(kernel: CgaKernel) -> Iterator[Tuple[int, int, int, object]]:
    """Yield ``(ctx_index, position, fu, op)`` in canonical order."""
    for ci, ctx in enumerate(kernel.contexts):
        for pos, fu in enumerate(sorted(ctx.ops)):
            yield ci, pos, fu, ctx.ops[fu]


def _pool_value(op, src_index: Optional[int], sel: SrcSel) -> int:
    """The runtime value of an IMM selection, with the mem-offset
    pre-scaling the decoded tier applies (IMM offset, no phi init)."""
    value = sel.value & MASK64
    if (
        src_index == 1
        and sel.init is None
        and group_of(op.opcode) in (OpGroup.LDMEM, OpGroup.STMEM)
    ):
        value <<= memops.mem_info(op.opcode).imm_scale
    return value


def _cga_pool_map(kernel: CgaKernel):
    """Return ``(values, site_index)`` where ``site_index`` maps
    ``(ctx, fu, role, src_index)`` to ``(imm_slot, init_slot)``."""
    values: List[int] = []
    index: Dict[tuple, Tuple[Optional[int], Optional[int]]] = {}
    for ci, _pos, fu, op in _iter_cga_ops(kernel):
        sites = []
        if op.pred is not None:
            sites.append(("pred", None, op.pred))
        for i, sel in enumerate(op.srcs):
            sites.append(("src", i, sel))
        for role, i, sel in sites:
            imm_slot = init_slot = None
            if sel.kind is SrcKind.IMM:
                imm_slot = len(values)
                values.append(_pool_value(op, i, sel))
            if sel.init is not None:
                init_slot = len(values)
                values.append(sel.init & MASK64)
            index[(ci, fu, role, i)] = (imm_slot, init_slot)
    return values, index


def cga_imms(kernel: CgaKernel) -> Tuple[int, ...]:
    """The kernel's immediate pool, in canonical site order."""
    return tuple(_cga_pool_map(kernel)[0])


def _sel_sig(sel: Optional[SrcSel]) -> Optional[tuple]:
    if sel is None:
        return None
    return (
        sel.kind.value,
        None if sel.kind is SrcKind.IMM else sel.value,
        sel.init is not None,
    )


def cga_signature(kernel: CgaKernel) -> tuple:
    """Structural identity of a kernel: everything except immediate and
    phi-init *values* (pooled), the trip count, preloads and the name."""
    ctxs = []
    for ctx in kernel.contexts:
        ops = []
        for fu in sorted(ctx.ops):
            op = ctx.ops[fu]
            ops.append(
                (
                    fu,
                    op.opcode.value,
                    op.stage,
                    op.pred_negate,
                    _sel_sig(op.pred),
                    tuple(_sel_sig(s) for s in op.srcs),
                    tuple((d.kind.value, d.index, d.last_iteration_only) for d in op.dsts),
                )
            )
        ctxs.append(tuple(ops))
    return (kernel.ii, kernel.stage_count, tuple(ctxs))


# ----------------------------------------------------------------------
# Inline dataflow semantics
# ----------------------------------------------------------------------
#
# Expression templates reproduce :mod:`repro.isa.semantics` bit-exactly
# with the dispatch and the lane split/pack allocations removed.  The
# SIMD lane identities (C4AND == full-width AND, the C4SHIFTL raw-bit
# form, arithmetic-shift C4SHIFTR) are proven equivalent to the lifted
# reference forms in the differential suite.


def _sx(expr: str) -> str:
    """Sign-extend a raw 32-bit pattern expression to a Python int."""
    return "((((%s) & 4294967295) ^ 2147483648) - 2147483648)" % expr


def _ucmp(tmpl: str):
    return lambda a, b: ("(1 if (%s & 4294967295) " + tmpl + " (%s & 4294967295) else 0)") % (a, b)


def _scmp(tmpl: str):
    return lambda a, b: ("(1 if %s " + tmpl + " %s else 0)") % (_sx(a), _sx(b))


_SCALAR_EXPR = {
    Opcode.ADD: lambda a, b: "((%s + %s) & 4294967295)" % (a, b),
    Opcode.ADD_U: lambda a, b: "((%s + %s) & 4294967295)" % (a, b),
    Opcode.SUB: lambda a, b: "((%s - %s) & 4294967295)" % (a, b),
    Opcode.SUB_U: lambda a, b: "((%s - %s) & 4294967295)" % (a, b),
    Opcode.OR: lambda a, b: "((%s | %s) & 4294967295)" % (a, b),
    Opcode.NOR: lambda a, b: "(~(%s | %s) & 4294967295)" % (a, b),
    Opcode.AND: lambda a, b: "((%s & %s) & 4294967295)" % (a, b),
    Opcode.NAND: lambda a, b: "(~(%s & %s) & 4294967295)" % (a, b),
    Opcode.XOR: lambda a, b: "((%s ^ %s) & 4294967295)" % (a, b),
    Opcode.XNOR: lambda a, b: "(~(%s ^ %s) & 4294967295)" % (a, b),
    Opcode.LSL: lambda a, b: "(((%s & 4294967295) << (%s & 31)) & 4294967295)" % (a, b),
    Opcode.LSR: lambda a, b: "((%s & 4294967295) >> (%s & 31))" % (a, b),
    Opcode.ASR: lambda a, b: "((%s >> (%s & 31)) & 4294967295)" % (_sx(a), b),
    Opcode.MUL: lambda a, b: "((%s * %s) & 4294967295)" % (_sx(a), _sx(b)),
    Opcode.MUL_U: lambda a, b: "((%s * %s) & 4294967295)" % (a, b),
    # Equality is sign-agnostic on equal-width patterns.
    Opcode.EQ: _ucmp("=="),
    Opcode.NE: _ucmp("!="),
    Opcode.GT: _scmp(">"),
    Opcode.GT_U: _ucmp(">"),
    Opcode.LT: _scmp("<"),
    Opcode.LT_U: _ucmp("<"),
    Opcode.GE: _scmp(">="),
    Opcode.GE_U: _ucmp(">="),
    Opcode.LE: _scmp("<="),
    Opcode.LE_U: _ucmp("<="),
    Opcode.PRED_EQ: _ucmp("=="),
    Opcode.PRED_NE: _ucmp("!="),
    Opcode.PRED_LT: _scmp("<"),
    Opcode.PRED_LT_U: _ucmp("<"),
    Opcode.PRED_LE: _scmp("<="),
    Opcode.PRED_LE_U: _ucmp("<="),
    Opcode.PRED_GT: _scmp(">"),
    Opcode.PRED_GT_U: _ucmp(">"),
    Opcode.PRED_GE: _scmp(">="),
    Opcode.PRED_GE_U: _ucmp(">="),
    Opcode.DIV: lambda a, b: "_divs(%s, %s)" % (a, b),
    Opcode.DIV_U: lambda a, b: "_divu(%s, %s)" % (a, b),
    Opcode.PRED_CLEAR: lambda a, b: "0",
    Opcode.PRED_SET: lambda a, b: "1",
}

#: Mask selecting lanes 0 and 2 (for the 16-bit swap), lanes 1+3 cleared.
_SWAP16_MASK = 0x0000FFFF0000FFFF
#: Mask selecting lane 2 in place (for C4NEGB's untouched even lane).
_LANE2_MASK = 0x0000FFFF00000000
#: Per-lane sign bits / low-15-bit masks for the SWAR q15 add/sub path.
_SIGN4 = 0x8000800080008000
_LOW4 = 0x7FFF7FFF7FFF7FFF


def _lane_s(x: str, i: int) -> str:
    """Signed 16-bit lane *i* (lane 0 = LSBs) of raw 64-bit var *x*."""
    if i == 0:
        return "(((%s & 65535) ^ 32768) - 32768)" % x
    return "((((%s >> %d) & 65535) ^ 32768) - 32768)" % (x, 16 * i)


def _sat(t: str) -> str:
    return "(32767 if %s > 32767 else (%s if %s >= -32768 else -32768))" % (t, t, t)


def _pack_sat(ts) -> str:
    parts = []
    for i, t in enumerate(ts):
        part = "(%s & 65535)" % _sat(t)
        parts.append(part if i == 0 else "(%s << %d)" % (part, 16 * i))
    return " | ".join(parts)


def _pack_sat_prod(ts) -> str:
    """Pack q15 products: ``(a * b) >> 15`` of two signed 16-bit lanes
    lies in [-32767, 32768], so only the upper clamp can fire."""
    parts = []
    for i, t in enumerate(ts):
        part = "((32767 if %s > 32767 else %s) & 65535)" % (t, t)
        parts.append(part if i == 0 else "(%s << %d)" % (part, 16 * i))
    return " | ".join(parts)


def _emit_swar_addsub(lines: List[str], ind: str, op: Opcode, target: str, a: str, b: str) -> None:
    """Saturating 4x16 add/sub without unpacking (SIMD-within-a-register).

    The wrapped per-lane sum/difference is computed with the classic
    carry-isolation identity; overflowed lanes (sign of both inputs
    equal — for SUB, of input and negated subtrahend — and different
    from the result's) are then overwritten branchlessly with
    ``0x7fff + sign(a)``, i.e. 0x7fff on positive and 0x8000 on
    negative overflow.  Proven equivalent to the unpack/saturate/pack
    form over the full edge grid in the differential suite.
    """
    if op is Opcode.C4ADD:
        lines.append("%sf4 = (((%s) & %d) + ((%s) & %d)) ^ (((%s) ^ (%s)) & %d)"
                     % (ind, a, _LOW4, b, _LOW4, a, b, _SIGN4))
        lines.append("%so4 = (((%s) ^ f4) & ((%s) ^ f4)) & %d" % (ind, a, b, _SIGN4))
    else:  # C4SUB
        lines.append("%sf4 = ((((%s) | %d) - ((%s) & %d)) ^ (((%s) ^ (%s)) & %d)) ^ %d"
                     % (ind, a, _SIGN4, b, _LOW4, a, b, _SIGN4, _SIGN4))
        lines.append("%so4 = (((%s) ^ (%s)) & ((%s) ^ f4)) & %d" % (ind, a, b, a, _SIGN4))
    lines.append("%sif o4:" % ind)
    lines.append("%s    e4 = (o4 >> 15) * 65535" % ind)
    lines.append("%s    f4 = (f4 ^ (f4 & e4)) | ((%d & e4) + (((%s) >> 15) & (o4 >> 15)))"
                 % (ind, _LOW4, a))
    lines.append("%s%s = f4" % (ind, target))


def _emit_simd(lines: List[str], ind: str, op: Opcode, target: str, a: str, b: Optional[str]) -> None:
    """Emit ``target = <simd result>`` for raw 64-bit operand vars."""
    if op is Opcode.C4AND:
        lines.append("%s%s = %s & %s" % (ind, target, a, b))
    elif op is Opcode.C4OR:
        lines.append("%s%s = %s | %s" % (ind, target, a, b))
    elif op is Opcode.C4XOR:
        lines.append("%s%s = %s ^ %s" % (ind, target, a, b))
    elif op is Opcode.C4SHIFTL:
        lines.append("%ssh = %s & 15" % (ind, b))
        lines.append(
            "%s%s = ((%s << sh) & 65535) | ((((%s >> 16) << sh) & 65535) << 16)"
            " | ((((%s >> 32) << sh) & 65535) << 32)"
            " | ((((%s >> 48) << sh) & 65535) << 48)" % (ind, target, a, a, a, a)
        )
    elif op is Opcode.C4SHIFTR:
        lines.append("%ssh = %s & 15" % (ind, b))
        for i in range(4):
            lines.append("%sa%d = %s" % (ind, i, _lane_s(a, i)))
        lines.append(
            "%s%s = ((a0 >> sh) & 65535) | (((a1 >> sh) & 65535) << 16)"
            " | (((a2 >> sh) & 65535) << 32) | (((a3 >> sh) & 65535) << 48)"
            % (ind, target)
        )
    elif op is Opcode.C4SWAP32:
        lines.append(
            "%s%s = ((%s >> 32) & 4294967295) | ((%s & 4294967295) << 32)"
            % (ind, target, a, a)
        )
    elif op is Opcode.C4SWAP16:
        lines.append(
            "%s%s = ((%s >> 16) & %d) | ((%s & %d) << 16)"
            % (ind, target, a, _SWAP16_MASK, a, _SWAP16_MASK)
        )
    elif op is Opcode.C4NEGB:
        lines.append("%sa1 = %s" % (ind, _lane_s(a, 1)))
        lines.append("%sa3 = %s" % (ind, _lane_s(a, 3)))
        lines.append(
            "%s%s = (%s & 65535) | (((32767 if a1 == -32768 else -a1) & 65535) << 16)"
            " | (%s & %d) | (((32767 if a3 == -32768 else -a3) & 65535) << 48)"
            % (ind, target, a, a, _LANE2_MASK)
        )
    elif op in (Opcode.C4ADD, Opcode.C4SUB):
        _emit_swar_addsub(lines, ind, op, target, a, b)
    elif op in (Opcode.C4MAX, Opcode.C4MIN, Opcode.D4PROD, Opcode.C4PROD):
        for i in range(4):
            lines.append("%sa%d = %s" % (ind, i, _lane_s(a, i)))
            lines.append("%sb%d = %s" % (ind, i, _lane_s(b, i)))
        if op is Opcode.C4MAX:
            lines.append(
                "%s%s = ((a0 if a0 > b0 else b0) & 65535)"
                " | (((a1 if a1 > b1 else b1) & 65535) << 16)"
                " | (((a2 if a2 > b2 else b2) & 65535) << 32)"
                " | (((a3 if a3 > b3 else b3) & 65535) << 48)" % (ind, target)
            )
            return
        if op is Opcode.C4MIN:
            lines.append(
                "%s%s = ((a0 if a0 < b0 else b0) & 65535)"
                " | (((a1 if a1 < b1 else b1) & 65535) << 16)"
                " | (((a2 if a2 < b2 else b2) & 65535) << 32)"
                " | (((a3 if a3 < b3 else b3) & 65535) << 48)" % (ind, target)
            )
            return
        if op is Opcode.D4PROD:
            pairs = ["(a%d * b%d) >> 15" % (i, i) for i in range(4)]
        else:  # C4PROD: cross pairing |a1*b2|b1*a2|c1*d2|d1*c2|
            pairs = ["(a0 * b1) >> 15", "(a1 * b0) >> 15",
                     "(a2 * b3) >> 15", "(a3 * b2) >> 15"]
        for i, p in enumerate(pairs):
            lines.append("%st%d = %s" % (ind, i, p))
        lines.append("%s%s = %s" % (ind, target, _pack_sat_prod(["t%d" % i for i in range(4)])))
    else:  # pragma: no cover - closed SIMD opcode set
        raise CodegenUnsupported("no inline template for %s" % op.value)


# ----------------------------------------------------------------------
# CGA source generation
# ----------------------------------------------------------------------


class _CgaChain:
    """One operation's result pipeline: issue phase, commit phase, the
    shift registers carrying the in-flight value."""

    __slots__ = ("oid", "ci", "pos", "fu", "op", "group", "kind", "latency",
                 "weight", "stage", "q", "delta", "n")

    def __init__(self, oid, ci, pos, fu, op, group, kind, ii):
        self.oid = oid
        self.ci = ci
        self.pos = pos
        self.fu = fu
        self.op = op
        self.group = group
        self.kind = kind  # "dataflow" | "load" | "store"
        self.latency = latency_of(op.opcode)
        self.weight = op_weight(op.opcode)
        self.stage = op.stage
        if kind == "store":
            self.q = self.delta = self.n = 0
            return
        self.q = (ci + self.latency) % ii
        self.delta = (ci + self.latency) // ii
        self.n = self.delta + (1 if self.q > ci else 0)


class _CgaGen:
    """Emits the specialized steady-state function of one kernel."""

    def __init__(self, kernel: CgaKernel, arch: CgaArchitecture, fault,
                 cdrf_ports: Tuple[int, int], cprf_ports: Tuple[int, int],
                 n_lanes: Optional[int] = None,
                 trip: Optional[int] = None) -> None:
        self.kernel = kernel
        self.arch = arch
        self.fault = fault
        self.cdrf_ports = cdrf_ports
        self.cprf_ports = cprf_ports
        self.cdrf_mask = (1 << arch.cdrf.width) - 1
        self.cprf_mask = 1  # PredicateFile is 1-bit regardless of arch.cprf
        self.n_lanes = n_lanes
        self.batch = n_lanes is not None
        #: Trip-count specialization (batch tier): with a concrete trip
        #: the whole modulo schedule is compile-time, so the iteration
        #: loop splits into unrolled prologue/epilogue slots and a
        #: guard-free steady state.
        self.trip = trip if (trip is not None and trip >= 1) else None
        self.pool, self.pool_index = _cga_pool_map(kernel)
        self.latch_fus = set()
        self.lrf_fus = set()
        self.ops: List[_CgaChain] = []
        self.by_issue: Dict[int, List[_CgaChain]] = {}
        self.by_commit: Dict[int, List[_CgaChain]] = {}
        self._classify()
        self.has_mem = any(rec.kind != "dataflow" for rec in self.ops)
        self.has_load = any(rec.kind == "load" for rec in self.ops)

    # -- validation + classification (mirrors decode.decode_op) --------

    def _classify(self) -> None:
        arch, fault = self.arch, self.fault
        ii = self.kernel.ii
        for oid, (ci, pos, fu, op) in enumerate(_iter_cga_ops(self.kernel)):
            if fu >= arch.n_units:
                raise fault("context names FU%d beyond %d units" % (fu, arch.n_units))
            if not arch.fus[fu].supports(op.opcode):
                raise fault("FU%d cannot execute %s" % (fu, op.opcode.value))
            if op.stage < 0:
                raise fault("FU%d op has negative pipeline stage %d" % (fu, op.stage))
            group = group_of(op.opcode)
            if group is OpGroup.LDMEM:
                kind = "load"
                if len(op.srcs) < 2:
                    raise fault("%s needs base and offset sources" % op.opcode.value)
            elif group is OpGroup.STMEM:
                kind = "store"
                if len(op.srcs) < 3:
                    raise fault("%s needs base, offset and value sources" % op.opcode.value)
            elif group in DATAFLOW_GROUPS:
                kind = "dataflow"
                arity = operand_count(op.opcode)
                if arity == 2 and len(op.srcs) != 2:
                    raise fault("%s expects 2 sources" % op.opcode.value)
                if arity == 1 and len(op.srcs) not in (1, 2):
                    raise fault("%s expects 1 source" % op.opcode.value)
            else:
                raise fault(
                    "opcode %s (%s group) cannot execute on the array"
                    % (op.opcode.value, group.value)
                )
            rec = _CgaChain(oid, ci, pos, fu, op, group, kind, ii)
            self.ops.append(rec)
            self.by_issue.setdefault(ci, []).append(rec)
            if kind != "store":
                self.latch_fus.add(fu)
                self.by_commit.setdefault(rec.q, []).append(rec)
            self._validate_sites(rec)
        for chains in self.by_commit.values():
            chains.sort(key=lambda r: (-r.latency, r.pos))
        self._check_port_pressure()

    def _validate_sites(self, rec: _CgaChain) -> None:
        fault, arch, fu = self.fault, self.arch, rec.fu
        sels = ([] if rec.op.pred is None else [rec.op.pred]) + list(rec.op.srcs)
        for sel in sels:
            kind = sel.kind
            if kind is SrcKind.WIRE:
                if not arch.interconnect.connected(sel.value, fu):
                    raise fault(
                        "no wire from FU%d to FU%d in %s" % (sel.value, fu, arch.name)
                    )
                self.latch_fus.add(sel.value)
            elif kind is SrcKind.LRF:
                if arch.fus[fu].local_rf is None:
                    raise fault("FU%d has no local register file" % fu)
                self.lrf_fus.add(fu)
            elif kind in (SrcKind.CDRF, SrcKind.CPRF):
                if not arch.fus[fu].has_cdrf_port:
                    raise fault("FU%d has no central RF port" % fu)
            elif kind is SrcKind.SELF:
                self.latch_fus.add(fu)
        for dst in rec.op.dsts:
            if dst.kind is DstKind.LRF:
                if arch.fus[fu].local_rf is None:
                    raise fault("FU%d has no local register file" % fu)
                self.lrf_fus.add(fu)
            elif not arch.fus[fu].has_cdrf_port:
                raise fault("FU%d has no central RF port" % fu)

    def _drain_entries(self):
        """``(D, chain, j)`` commits that can still be pending after the
        last context, sorted in ring order.  Register ``w<oid>_<j>``
        commits ``j*ii + q + 1`` cycles past the final logical cycle."""
        ii = self.kernel.ii
        entries = []
        for chains in self.by_commit.values():
            for rec in chains:
                for j in range(rec.delta):
                    d = j * ii + rec.q + 1
                    assert d <= MAX_OP_LATENCY, (rec.op.opcode, d)
                    entries.append((d, rec, j))
        entries.sort(key=lambda e: (e[0], -e[1].latency, e[1].pos))
        return entries

    def _check_port_pressure(self) -> None:
        """Static worst case per logical cycle vs. the central-RF ports.

        The decoded tier enforces this dynamically (``RegisterFile``
        raises ``PortOverflowError``); the compiled tier skips the
        per-access bookkeeping, which is only sound when no cycle *can*
        overflow.  Squashed operations read fewer ports, so counting
        every site is conservative.  During the drain the decoded tier
        never calls ``begin_cycle``, so its port window spans the last
        logical cycle plus the whole drain — modelled the same here.
        """
        ii = self.kernel.ii
        reads_d = [0] * ii
        reads_p = [0] * ii
        writes_d = [0] * ii
        writes_p = [0] * ii
        for rec in self.ops:
            sels = ([] if rec.op.pred is None else [rec.op.pred]) + list(rec.op.srcs)
            for sel in sels:
                if sel.kind is SrcKind.CDRF:
                    reads_d[rec.ci] += 1
                elif sel.kind is SrcKind.CPRF:
                    reads_p[rec.ci] += 1
            if rec.kind != "store":
                for dst in rec.op.dsts:
                    if dst.kind is DstKind.CDRF:
                        writes_d[rec.q] += 1
                    elif dst.kind is DstKind.CPRF:
                        writes_p[rec.q] += 1
        drain_d = drain_p = 0
        for _d, rec, _j in self._drain_entries():
            for dst in rec.op.dsts:
                if dst.kind is DstKind.CDRF:
                    drain_d += 1
                elif dst.kind is DstKind.CPRF:
                    drain_p += 1
        worst = [
            (max(reads_d), self.cdrf_ports[0], "CDRF reads"),
            (max(reads_p), self.cprf_ports[0], "CPRF reads"),
            (max(max(writes_d), writes_d[ii - 1] + drain_d), self.cdrf_ports[1], "CDRF writes"),
            (max(max(writes_p), writes_p[ii - 1] + drain_p), self.cprf_ports[1], "CPRF writes"),
        ]
        for used, ports, what in worst:
            if used > ports:
                raise CodegenUnsupported(
                    "kernel %s: worst-case %s (%d) exceed %d ports"
                    % (self.kernel.name, what, used, ports)
                )

    # -- operand emission ----------------------------------------------

    def _base_read(self, lines: List[str], ind: str, sel: SrcSel, fu: int,
                   imm_slot: Optional[int], tally=None) -> str:
        """Statements for a source read's side effects; returns the value
        expression.  Mirrors the decoded tier's reader closures.  With
        *tally*, unconditional access counts accumulate statically
        instead of emitting per-read increments."""
        kind = sel.kind
        if kind is SrcKind.SELF:
            return "l_%d" % fu
        if kind is SrcKind.WIRE:
            if tally is None:
                lines.append(ind + "n_itx += 1")
            else:
                tally["n_itx"] += 1
            return "l_%d" % sel.value
        if kind is SrcKind.LRF:
            if tally is None:
                lines.append(ind + "n_lrf_r += 1")
            else:
                tally["n_lrf_r"] += 1
            return "L%d[%d]" % (fu, sel.value)
        if kind is SrcKind.CDRF:
            if tally is None:
                lines.append(ind + "n_cdrf_r += 1")
            else:
                tally["n_cdrf_r"] += 1
            return "CD[%d]" % sel.value
        if kind is SrcKind.CPRF:
            if tally is None:
                lines.append(ind + "n_cprf_r += 1")
            else:
                tally["n_cprf_r"] += 1
            return "CP[%d]" % sel.value
        return "imm_%d" % imm_slot

    def _read_operand(self, lines: List[str], ind: str, rec: _CgaChain,
                      role: str, i: Optional[int], sel: SrcSel,
                      it_var: str, name: str, it0: Optional[bool] = None,
                      tally=None) -> str:
        """Emit one operand read (phi-aware); returns a value expression.

        A phi (``sel.init is not None``) reads the initial immediate on
        iteration 0 without touching the base location (and without its
        stats), exactly like the decoded reader.  *it0* resolves the
        phi statically (trip-specialized emission): ``True`` means this
        slot is the op's iteration 0, ``None`` keeps the runtime test on
        *it_var*."""
        imm_slot, init_slot = self.pool_index[(rec.ci, rec.fu, role, i)]
        if sel.init is not None:
            if it0 is not None:
                if it0:
                    return "imm_%d" % init_slot
                return self._base_read(lines, ind, sel, rec.fu, imm_slot,
                                       tally=tally)
            lines.append(ind + "if %s == 0:" % it_var)
            lines.append(ind + "    %s = imm_%d" % (name, init_slot))
            lines.append(ind + "else:")
            sub: List[str] = []
            expr = self._base_read(sub, ind + "    ", sel, rec.fu, imm_slot)
            lines.extend(sub)
            lines.append(ind + "    %s = %s" % (name, expr))
            return name
        return self._base_read(lines, ind, sel, rec.fu, imm_slot, tally=tally)

    # -- commit emission -----------------------------------------------

    def _emit_dst(self, lines: List[str], ind: str, rec: _CgaChain, dst, val: str,
                  tally=None) -> None:
        if dst.kind is DstKind.LRF:
            mask = (1 << self.arch.fus[rec.fu].local_rf.width) - 1
            if tally is None:
                lines.append(ind + "n_lrf_w += 1")
            else:
                tally["n_lrf_w"] += 1
            lines.append(ind + "L%d[%d] = %s & %d" % (rec.fu, dst.index, val, mask))
        elif dst.kind is DstKind.CDRF:
            if tally is None:
                lines.append(ind + "n_cdrf_w += 1")
            else:
                tally["n_cdrf_w"] += 1
            lines.append(ind + "CD[%d] = %s & %d" % (dst.index, val, self.cdrf_mask))
        else:
            if tally is None:
                lines.append(ind + "n_cprf_w += 1")
            else:
                tally["n_cprf_w"] += 1
            lines.append(ind + "CP[%d] = %s & %d" % (dst.index, val, self.cprf_mask))

    def _emit_commit_writes(self, lines: List[str], ind: str, rec: _CgaChain,
                            val: str, static_j: Optional[int] = None) -> None:
        """Latch write-back plus destination writes for one commit.  In
        the main loop ``last_iteration_only`` is a runtime comparison on
        the committing iteration; in the drain (*static_j* given) the
        committing iteration is ``trip + <static offset>``, making the
        check compile-time."""
        lines.append(ind + "l_%d = %s" % (rec.fu, val))
        dsts = rec.op.dsts
        if static_j is None:
            if any(d.last_iteration_only for d in dsts):
                lines.append(ind + "itc = iter_slot - %d" % (rec.delta + rec.stage))
            for d in dsts:
                sub = ind
                if d.last_iteration_only:
                    lines.append(ind + "if itc == last_iter:")
                    sub = ind + "    "
                self._emit_dst(lines, sub, rec, d, val)
        else:
            # Register j holds the value issued in slot trip+K1-delta+j,
            # i.e. iteration trip + K1 - delta + j - stage; it is the
            # last iteration exactly when j == stage + delta - stages.
            keep = rec.stage + rec.delta - self.kernel.stage_count
            for d in dsts:
                if d.last_iteration_only and static_j != keep:
                    continue
                self._emit_dst(lines, ind, rec, d, val)

    def _emit_commit(self, lines: List[str], ind: str, rec: _CgaChain) -> None:
        oid, n = rec.oid, rec.n
        lines.append(ind + "v = w%d_0" % oid)
        for j in range(n - 1):
            lines.append(ind + "w%d_%d = w%d_%d" % (oid, j, oid, j + 1))
        lines.append(ind + "w%d_%d = _A" % (oid, n - 1))
        lines.append(ind + "if v is not _A:")
        self._emit_commit_writes(lines, ind + "    ", rec, "v")

    # -- issue emission ------------------------------------------------

    def _emit_execute(self, lines: List[str], ind: str, rec: _CgaChain, it_var: str,
                      it0: Optional[bool] = None, tally=None) -> None:
        op = rec.op
        if rec.kind == "dataflow":
            arity = operand_count(op.opcode)
            names = []
            for i, sel in enumerate(op.srcs):
                name = "ab"[i] if i < 2 else "x%d" % i
                names.append(self._read_operand(lines, ind, rec, "src", i, sel,
                                                it_var, name, it0=it0, tally=tally))
            target = "w%d_%d" % (rec.oid, rec.n - 1)
            if rec.group in (OpGroup.SIMD1, OpGroup.SIMD2):
                a = names[0]
                if a != "a":
                    lines.append(ind + "a = %s" % a)
                    a = "a"
                b = None
                if arity == 2:
                    b = names[1]
                    if b != "b":
                        lines.append(ind + "b = %s" % b)
                        b = "b"
                _emit_simd(lines, ind, op.opcode, target, a, b)
            else:
                use = names[:arity] + ["0"] * (2 - min(arity, 2))
                lines.append(ind + "%s = %s" % (target, _SCALAR_EXPR[op.opcode](use[0], use[1])))
            return
        info = memops.mem_info(op.opcode)
        base = self._read_operand(lines, ind, rec, "src", 0, op.srcs[0], it_var, "a",
                                  it0=it0, tally=tally)
        off_sel = op.srcs[1]
        off_slot, _ = self.pool_index[(rec.ci, rec.fu, "src", 1)]
        if off_sel.kind is SrcKind.IMM and off_sel.init is None:
            lines.append(
                "%saddr = (((%s) & 4294967295) + imm_%d) & 4294967295" % (ind, base, off_slot)
            )
        else:
            off = self._read_operand(lines, ind, rec, "src", 1, off_sel, it_var, "b",
                                     it0=it0, tally=tally)
            lines.append(
                "%saddr = (((%s) & 4294967295) + ((%s) & 4294967295)) & 4294967295"
                % (ind, base, off)
            )
        if rec.kind == "load":
            if self.batch:
                _emit_inline_read(lines, ind, "physical", info.size,
                                  self.arch.l1.banks, self.arch.l1.bytes,
                                  tally=tally)
            else:
                lines.append(ind + "raw, extra = timed_read(physical, addr, %d)" % info.size)
            lines.append(ind + "stall_offset += extra")
            target = "w%d_%d" % (rec.oid, rec.n - 1)
            if info.size == 8:
                lines.append(ind + "%s = raw" % target)
            elif info.signed:
                hb = 1 << (info.size * 8 - 1)
                lines.append(ind + "%s = ((raw ^ %d) - %d) & 4294967295" % (target, hb, hb))
            else:
                lines.append(ind + "%s = raw & %d" % (target, (1 << (info.size * 8)) - 1))
        else:  # store: no latch, no commit chain
            sv = self._read_operand(lines, ind, rec, "src", 2, op.srcs[2], it_var, "c",
                                    it0=it0, tally=tally)
            mask = (1 << (info.size * 8)) - 1
            if self.batch:
                lines.append(ind + "v_st = (%s) & %d" % (sv, mask))
                _emit_inline_write(lines, ind, "physical", info.size,
                                   self.arch.l1.banks, self.arch.l1.bytes,
                                   tally=tally)
                lines.append(ind + "stall_offset += extra")
            else:
                lines.append(
                    "%sstall_offset += timed_write(physical, addr, (%s) & %d, %d)"
                    % (ind, sv, mask, info.size)
                )

    def _emit_issue(self, lines: List[str], ind: str, rec: _CgaChain, it_var: str,
                    it0: Optional[bool] = None, tally=None) -> None:
        op = rec.op
        body = ind
        body_tally = tally
        if op.pred is not None:
            # The predicate read itself is unconditional; the op body is
            # data-dependent, so its accounting stays inline.
            pexpr = self._read_operand(lines, ind, rec, "pred", None, op.pred,
                                       it_var, "pv", it0=it0, tally=tally)
            if op.pred_negate:
                lines.append(ind + "if (%s) & 1:" % pexpr)
            else:
                lines.append(ind + "if not ((%s) & 1):" % pexpr)
            lines.append(ind + "    squashed += 1")
            lines.append(ind + "else:")
            body = ind + "    "
            body_tally = None
            lines.append(body + "n_fu%d += %d" % (rec.fu, rec.weight))
            lines.append(body + "n_g_%s += %d" % (rec.group.name, rec.weight))
            lines.append(body + "pred_weight += %d" % rec.weight)
        self._emit_execute(lines, body, rec, it_var, it0=it0, tally=body_tally)

    # -- whole-function assembly ---------------------------------------

    def generate(self) -> str:
        lines: List[str] = []
        lines.append(
            "def _cga_run(trip, start_cycle, preload_cycles, imms, out_latch, CD, CP,"
            " local_rfs, stats, timed_read, timed_write):"
        )
        self._emit_lane(lines, "    ", "return %s")
        return "\n".join(lines) + "\n"

    def generate_batch(self) -> str:
        """Lane-batched variant: one function advancing ``n_lanes``
        packets' steady-state windows back to back through
        structure-of-arrays arguments, with the scratchpad model inlined
        against per-lane byte views and bank clocks.  A lane that
        faults lands its exception in ``faults[lane]`` — its partial
        state is unusable (deferred counters are lost) and the caller
        must re-run that lane per-packet from scratch — while the
        remaining lanes complete normally."""
        lines: List[str] = []
        w = lines.append
        w("def _cga_run_batch(trips, start_cycles, preload_cycles_s, imms_s,"
          " out_latch_s, CD_s, CP_s, local_rfs_s, mem_s, stats_s, ends, faults):")
        if self.has_load:
            w("    _fb = int.from_bytes")
        w("    for _b in range(%d):" % self.n_lanes)
        w("        try:")
        ind = "            "
        w(ind + "trip = trips[_b]")
        w(ind + "start_cycle = start_cycles[_b]")
        w(ind + "preload_cycles = preload_cycles_s[_b]")
        w(ind + "imms = imms_s[_b]")
        w(ind + "out_latch = out_latch_s[_b]")
        w(ind + "CD = CD_s[_b]")
        w(ind + "CP = CP_s[_b]")
        w(ind + "local_rfs = local_rfs_s[_b]")
        w(ind + "stats = stats_s[_b]")
        if self.has_mem:
            w(ind + "_sp = mem_s[_b]")
            w(ind + "M = _sp._mem")
            w(ind + "BNF = _sp._bank_next_free")
        self._emit_lane(lines, ind, "ends[_b] = %s")
        w("        except _ME as exc:")
        w("            faults[_b] = exc")
        return "\n".join(lines) + "\n"

    # -- trip-specialized emission (batch tier) ------------------------
    #
    # When the batch driver groups lanes it already keys on the resolved
    # trip count, so the batch function may legally bake the trip into
    # the source.  With a concrete trip the entire modulo schedule is
    # compile-time: which stages are active, whether a latch chain holds
    # a value, whether an operand is in its phi iteration and whether a
    # ``last_iteration_only`` write fires all become functions of the
    # slot index alone.  The iteration space then splits into unrolled
    # prologue/epilogue slots (each emitted with its static schedule
    # state) around a guard-free steady-state loop, and every
    # statically-known access count is hoisted out of the loop into one
    # closed-form adjustment (``tally``).

    _TALLY_KEYS = ("n_cdrf_r", "n_cdrf_w", "n_cprf_r", "n_cprf_w",
                   "n_lrf_r", "n_lrf_w", "n_itx", "n_l1r", "n_l1w")

    def _spec_plan(self) -> Optional[Tuple[int, int, int]]:
        """``(T, lo, hi)``: total slots and the inclusive steady-state
        window where every op issues, every chain commits a present
        value, no phi initializes and no last-iteration write fires.
        ``None`` when specialization isn't worthwhile."""
        if not self.ops:
            return None
        trip = self.trip
        T = trip + self.kernel.stage_count - 1
        lo, hi = 0, T - 1
        for rec in self.ops:
            sels = ([] if rec.op.pred is None else [rec.op.pred]) + list(rec.op.srcs)
            has_phi = any(sel.init is not None for sel in sels)
            lo = max(lo, rec.stage + (1 if has_phi else 0))
            hi = min(hi, rec.stage + trip - 1)
            if rec.kind != "store":
                lo = max(lo, rec.stage + rec.delta)
                if any(d.last_iteration_only for d in rec.op.dsts):
                    hi = min(hi, trip - 2 + rec.delta + rec.stage)
        if lo > hi:
            lo, hi = T, T - 1  # no steady window: everything unrolls
        if lo + (T - 1 - hi) > 192:
            return None  # bound generated-code size for degenerate shapes
        return (T, lo, hi)

    def _issue_active(self, rec: _CgaChain, I: int) -> bool:
        return rec.stage <= I <= rec.stage + self.trip - 1

    def _chain_occupied(self, rec: _CgaChain, I: int) -> bool:
        """Could any shift register hold a value during slot *I*'s commit
        phase?  (The issue of slot I has already run when the chain's
        commit context follows its issue context.)"""
        last_t = I if rec.q > rec.ci else I - 1
        lower = max(rec.stage, I - rec.delta)
        upper = min(rec.stage + self.trip - 1, last_t)
        return upper >= lower

    def _emit_commit_writes_spec(self, lines: List[str], ind: str,
                                 rec: _CgaChain, val: str,
                                 lastonly_now: bool, tally) -> None:
        lines.append(ind + "l_%d = %s" % (rec.fu, val))
        for d in rec.op.dsts:
            if d.last_iteration_only and not lastonly_now:
                continue
            self._emit_dst(lines, ind, rec, d, val, tally=tally)

    def _emit_commit_spec(self, lines: List[str], ind: str, rec: _CgaChain,
                          I: Optional[int], tally) -> None:
        """Commit phase of one chain at a static slot (*I*) or in the
        steady state (``I is None``): presence, shift liveness and the
        last-iteration check are all compile-time; predicated chains
        keep the runtime ``_A`` test (a squash leaves the latch empty)."""
        oid, n = rec.oid, rec.n
        trip = self.trip
        steady = I is None
        present = steady or (rec.stage + rec.delta <= I
                             <= rec.stage + rec.delta + trip - 1)
        lastonly_now = (not steady) and I == trip - 1 + rec.delta + rec.stage
        # The tail register need not be cleared when the next write to it
        # (this slot's issue, or next slot's when the issue context
        # precedes the commit context) deterministically lands first.
        if rec.q > rec.ci:
            ov_slot = (0 if steady else I) + 1
            overwrite = rec.op.pred is None and (
                (steady and self._spec_hi + 1 <= rec.stage + trip - 1)
                or (not steady and self._issue_active(rec, ov_slot)))
        else:
            overwrite = rec.op.pred is None and (
                steady or self._issue_active(rec, I))
        w = lines.append
        if rec.op.pred is None:
            if present:
                self._emit_commit_writes_spec(lines, ind, rec, "w%d_0" % oid,
                                              lastonly_now, tally)
            for j in range(n - 1):
                w(ind + "w%d_%d = w%d_%d" % (oid, j, oid, j + 1))
            if not overwrite:
                w(ind + "w%d_%d = _A" % (oid, n - 1))
        else:
            if present:
                w(ind + "v = w%d_0" % oid)
            for j in range(n - 1):
                w(ind + "w%d_%d = w%d_%d" % (oid, j, oid, j + 1))
            w(ind + "w%d_%d = _A" % (oid, n - 1))
            if present:
                w(ind + "if v is not _A:")
                self._emit_commit_writes_spec(lines, ind + "    ", rec, "v",
                                              lastonly_now, None)

    def _emit_slot_spec(self, lines: List[str], ind: str, I: Optional[int],
                        tally) -> None:
        ii = self.kernel.ii
        steady = I is None
        w = lines.append
        for p in range(ii):
            commits = self.by_commit.get(p, [])
            issues = self.by_issue.get(p, [])
            live = [r for r in commits if steady or self._chain_occupied(r, I)]
            active = [r for r in issues if steady or self._issue_active(r, I)]
            if not live and not active:
                continue
            for rec in live:
                self._emit_commit_spec(lines, ind, rec, I, tally)
            if any(r.kind != "dataflow" for r in active):
                if steady:
                    w(ind + "physical = start_cycle + iter_slot * %d + %d"
                      " + stall_offset" % (ii, p))
                else:
                    w(ind + "physical = start_cycle + %d + stall_offset"
                      % (I * ii + p))
            for rec in active:
                it0 = False if steady else (I == rec.stage)
                self._emit_issue(lines, ind, rec, "iter_slot", it0=it0,
                                 tally=tally)

    def _emit_body_spec(self, lines: List[str], ind: str,
                        plan: Tuple[int, int, int]) -> Dict[str, int]:
        T, lo, hi = plan
        self._spec_hi = hi
        tally = dict.fromkeys(self._TALLY_KEYS, 0)
        w = lines.append
        for I in range(min(lo, T)):
            w(ind + "# slot %d" % I)
            self._emit_slot_spec(lines, ind, I, tally)
        if lo <= hi:
            steady = dict.fromkeys(self._TALLY_KEYS, 0)
            w(ind + "for iter_slot in range(%d, %d):" % (lo, hi + 1))
            mark = len(lines)
            self._emit_slot_spec(lines, ind + "    ", None, steady)
            if len(lines) == mark:
                w(ind + "    pass")
            count = hi - lo + 1
            for key in tally:
                tally[key] += steady[key] * count
        for I in range(max(lo, hi + 1), T):
            w(ind + "# slot %d" % I)
            self._emit_slot_spec(lines, ind, I, tally)
        return tally

    def _emit_body_generic(self, lines: List[str], ind: str) -> None:
        """The runtime-guarded iteration loop (dynamic trip count)."""
        k = self.kernel
        ii = k.ii
        k1 = k.stage_count - 1
        w = lines.append
        w(ind + "for iter_slot in range(trip + %d):" % k1)
        bind = ind + "    "
        loop_mark = len(lines)
        for p in range(ii):
            commits = self.by_commit.get(p, [])
            issues = self.by_issue.get(p, [])
            if not commits and not issues:
                continue
            w(bind + "# context %d" % p)
            for rec in commits:
                self._emit_commit(lines, bind, rec)
            if any(r.kind != "dataflow" for r in issues):
                w(bind + "physical = start_cycle + iter_slot * %d + %d + stall_offset" % (ii, p))
            idx = 0
            while idx < len(issues):
                stage = issues[idx].stage
                run = [issues[idx]]
                idx += 1
                while idx < len(issues) and issues[idx].stage == stage:
                    run.append(issues[idx])
                    idx += 1
                if stage == 0:
                    w(bind + "if iter_slot <= last_iter:")
                    it_var = "iter_slot"
                else:
                    w(bind + "it_s = iter_slot - %d" % stage)
                    w(bind + "if 0 <= it_s <= last_iter:")
                    it_var = "it_s"
                for rec in run:
                    self._emit_issue(lines, bind + "    ", rec, it_var)
        if len(lines) == loop_mark:
            w(bind + "pass")

    # -- lane assembly --------------------------------------------------

    def _emit_lane(self, lines: List[str], ind: str, result_tmpl: str) -> None:
        k = self.kernel
        ii = k.ii
        k1 = k.stage_count - 1
        w = lines.append
        plan = self._spec_plan() if self.trip is not None else None
        n_imms = len(self.pool)
        if n_imms == 1:
            w(ind + "imm_0 = imms[0]")
        elif n_imms > 1:
            w(ind + ", ".join("imm_%d" % i for i in range(n_imms)) + " = imms")
        for fu in sorted(self.lrf_fus):
            w(ind + "L%d = local_rfs[%d]._regs" % (fu, fu))
        # Predicated ops tally issue counters per iteration: keep those
        # in one integer local per FU / op group and flush them with the
        # closed-form (unpredicated) totals in the epilogue.
        pred_fus: List[int] = []
        pred_groups: List[str] = []
        for rec in self.ops:
            if rec.op.pred is None:
                continue
            if rec.fu not in pred_fus:
                pred_fus.append(rec.fu)
            if rec.group.name not in pred_groups:
                pred_groups.append(rec.group.name)
        pred_fus.sort()
        if pred_fus:
            w(ind + " = ".join("n_fu%d" % fu for fu in pred_fus) + " = 0")
        if pred_groups:
            w(ind + " = ".join("n_g_%s" % g for g in pred_groups) + " = 0")
        if plan is not None:
            # The driver passes matching trips; the baked value wins.
            w(ind + "trip = %d" % self.trip)
        else:
            w(ind + "last_iter = trip - 1")
        for fu in sorted(self.latch_fus):
            w(ind + "l_%d = 0" % fu)
        for rec in self.ops:
            if rec.kind == "store":
                continue
            for j in range(rec.n):
                w(ind + "w%d_%d = _A" % (rec.oid, j))
        w(ind + "stall_offset = 0")
        w(ind + "n_cdrf_r = n_cdrf_w = n_cprf_r = n_cprf_w = n_lrf_r = n_lrf_w = n_itx = 0")
        if self.batch and self.has_mem:
            w(ind + "n_l1r = n_l1w = n_bc = bc_stall = 0")
        w(ind + "squashed = 0")
        w(ind + "pred_weight = 0")
        w(ind + "drain = 0")
        if plan is not None:
            tally = self._emit_body_spec(lines, ind, plan)
            for name in self._TALLY_KEYS:
                if tally[name]:
                    w(ind + "%s += %d" % (name, tally[name]))
        else:
            self._emit_body_generic(lines, ind)
        entries = self._drain_entries()
        if entries:
            w(ind + "# drain: commits still in flight past the last context")
        for d, rec, j in entries:
            w(ind + "v = w%d_%d" % (rec.oid, j))
            w(ind + "if v is not _A:")
            w(ind + "    drain = %d" % d)
            self._emit_commit_writes(lines, ind + "    ", rec, "v", static_j=j)
        # Batched accounting for unpredicated ops (closed form in trip),
        # then the stats flush the decoded tier performs per run.
        easy_fu: Dict[int, int] = {}
        easy_g: Dict[OpGroup, int] = {}
        easy_total = 0
        hard = []
        for rec in self.ops:
            if rec.op.pred is not None:
                continue
            if rec.stage <= k1:
                easy_fu[rec.fu] = easy_fu.get(rec.fu, 0) + rec.weight
                easy_g[rec.group] = easy_g.get(rec.group, 0) + rec.weight
                easy_total += rec.weight
            else:
                hard.append(rec)
        w(ind + "unpred = %d * trip" % easy_total)
        if easy_fu or hard or pred_fus:
            w(ind + "fu_ops = stats.fu_ops")
            w(ind + "op_groups = stats.op_groups")
        for fu in pred_fus:
            w(ind + "fu_ops[%d] += n_fu%d" % (fu, fu))
        for g in pred_groups:
            w(ind + "op_groups[_G_%s] += n_g_%s" % (g, g))
        for fu in sorted(easy_fu):
            w(ind + "fu_ops[%d] += %d * trip" % (fu, easy_fu[fu]))
        for g in sorted(easy_g, key=lambda g: g.name):
            w(ind + "op_groups[_G_%s] += %d * trip" % (g.name, easy_g[g]))
        for rec in hard:
            w(ind + "ne = trip - %d" % (rec.stage - k1))
            w(ind + "if ne > 0:")
            w(ind + "    fu_ops[%d] += %d * ne" % (rec.fu, rec.weight))
            w(ind + "    op_groups[_G_%s] += %d * ne" % (rec.group.name, rec.weight))
            w(ind + "    unpred += %d * ne" % rec.weight)
        w(ind + "total_logical = (trip + %d) * %d" % (k1, ii))
        w(ind + "stats.cdrf_reads += n_cdrf_r")
        w(ind + "stats.cdrf_writes += n_cdrf_w")
        w(ind + "stats.cprf_reads += n_cprf_r")
        w(ind + "stats.cprf_writes += n_cprf_w")
        w(ind + "stats.lrf_reads += n_lrf_r")
        w(ind + "stats.lrf_writes += n_lrf_w")
        w(ind + "stats.interconnect_transfers += n_itx")
        w(ind + "stats.cga_ops += pred_weight + unpred")
        w(ind + "stats.squashed_ops += squashed")
        w(ind + "stats.config_words += %d * total_logical" % k.context_words)
        w(ind + "stats.cga_cycles += preload_cycles + total_logical + drain + stall_offset")
        if self.batch and self.has_mem:
            w(ind + "stats.l1_reads += n_l1r")
            w(ind + "stats.l1_writes += n_l1w")
            w(ind + "stats.l1_bank_conflicts += n_bc")
            w(ind + "stats.l1_conflict_stall_cycles += bc_stall")
        w(ind + "stats.add_stall(_BC, stall_offset)")
        for fu in sorted(self.latch_fus):
            w(ind + "out_latch[%d] = l_%d" % (fu, fu))
        w(ind + result_tmpl % "start_cycle + total_logical + stall_offset + drain")


def cga_runner(kernel: CgaKernel, arch: CgaArchitecture, fault,
               cdrf_ports: Tuple[int, int], cprf_ports: Tuple[int, int]):
    """Return ``(fn, imms)`` for *kernel* on *arch*.

    ``fn`` is the compiled steady-state function (shared across
    ``patch_constants`` variants through the structural cache key);
    ``imms`` is this kernel's immediate pool to pass at call time.
    Raises :class:`CodegenUnsupported` when the static port-pressure
    proof fails, and *fault* for malformed kernels (same messages as the
    decoded tier's ``decode_kernel``).
    """
    key = ("cga", arch.fingerprint(), cga_signature(kernel))

    def gen() -> str:
        return _CgaGen(kernel, arch, fault, cdrf_ports, cprf_ports).generate()

    source = _cached_source(key, "cga", kernel.name, gen)
    fn = _compiled_fn(key, source, "_cga_run", {})
    return fn, cga_imms(kernel)


def cga_batch_runner(kernel: CgaKernel, arch: CgaArchitecture, fault,
                     cdrf_ports: Tuple[int, int], cprf_ports: Tuple[int, int],
                     n_lanes: int, trip: Optional[int] = None):
    """Return the lane-batched steady-state function for *kernel*.

    Same contracts as :func:`cga_runner`, but the compiled function
    advances ``n_lanes`` packets per call through structure-of-arrays
    arguments (``trips``, per-lane immediate pools, per-lane register
    backing lists, per-lane scratchpads) and the batch width joins the
    cache key — the L1 geometry it inlines is already covered by
    ``arch.fingerprint()``.  Per-lane pools come from :func:`cga_imms`
    of each ``patch_constants`` variant, so every lane shares this one
    compile.  Lanes must have ``trip >= 1``; the caller filters the
    rest.  Faulted lanes (``faults[lane]`` set) carry unusable partial
    state and must be re-run per-packet from scratch.

    With *trip* (the batch driver groups lanes by resolved trip count
    anyway) the function is additionally specialized on the trip: the
    schedule guards disappear into unrolled prologue/epilogue slots
    around a guard-free steady-state loop.  The trip joins the cache
    key; trips per kernel come from a small fixed set (the region
    programs bake them in), so the key space stays bounded.
    """
    key = ("cga-batch", arch.fingerprint(), int(n_lanes),
           None if trip is None else int(trip), cga_signature(kernel))

    def gen() -> str:
        return _CgaGen(kernel, arch, fault, cdrf_ports, cprf_ports,
                       n_lanes=int(n_lanes),
                       trip=None if trip is None else int(trip)).generate_batch()

    source = _cached_source(key, "cga-batch", kernel.name, gen)
    return _compiled_fn(key, source, "_cga_run_batch", {"_ME": MemoryError_})


# ----------------------------------------------------------------------
# VLIW: branch-free segments compiled to straight-line bundle runs
# ----------------------------------------------------------------------


def vliw_segment_end(bundles: List[VliwBundle], start_pc: int) -> int:
    """Exclusive end of the straight-line segment starting at *start_pc*:
    through the first bundle containing a live branch or control
    instruction (inclusive), or the end of the stream."""
    pc = start_pc
    n = len(bundles)
    while pc < n:
        for inst in bundles[pc]:
            if inst is None or inst.opcode is Opcode.NOP:
                continue
            group = group_of(inst.opcode)
            if group is OpGroup.BRANCH or group is OpGroup.CONTROL:
                return pc + 1
        pc += 1
    return n


def _iter_vliw_sites(bundles, start_pc: int, end_pc: int):
    """Yield ``(pc, slot, inst)`` for live instructions in segment order."""
    for pc in range(start_pc, end_pc):
        for slot, inst in enumerate(bundles[pc]):
            if inst is None or inst.opcode is Opcode.NOP:
                continue
            yield pc, slot, inst


def _vliw_imm_value(inst, src_index: int, operand) -> int:
    """Runtime pool value of one VLIW immediate, with the decoded tier's
    per-role transform: branch targets and CGA kernel ids stay raw,
    memory offsets are pre-scaled raw, everything else is encoded into
    64 bits two's-complement."""
    group = group_of(inst.opcode)
    if group in (OpGroup.BRANCH, OpGroup.CONTROL):
        return operand.value
    if src_index == 1 and group in (OpGroup.LDMEM, OpGroup.STMEM):
        return operand.value << memops.mem_info(inst.opcode).imm_scale
    return operand.value & MASK64


def _vliw_pool_map(bundles, start_pc: int, end_pc: int):
    """``(values, site_index)`` with ``site_index[(pc, slot, i)]`` the
    pool slot of that source; one canonical walk shared with codegen."""
    values: List[int] = []
    index: Dict[tuple, int] = {}
    for pc, slot, inst in _iter_vliw_sites(bundles, start_pc, end_pc):
        for i, operand in enumerate(inst.srcs):
            if isinstance(operand, Imm):
                index[(pc, slot, i)] = len(values)
                values.append(_vliw_imm_value(inst, i, operand))
    return values, index


def _operand_sig(operand) -> tuple:
    if isinstance(operand, Reg):
        return ("r", operand.index)
    if isinstance(operand, PredReg):
        return ("p", operand.index)
    if isinstance(operand, Imm):
        return ("i",)  # values live in the pool, not the key
    return ("?", repr(operand))


def vliw_signature(bundles, start_pc: int, end_pc: int) -> tuple:
    """Structural identity of a segment (immediate values excluded, so
    ``patch_constants`` program variants share one compiled artifact)."""
    seg = []
    for pc in range(start_pc, end_pc):
        insts = []
        for slot, inst in enumerate(bundles[pc]):
            if inst is None or inst.opcode is Opcode.NOP:
                continue
            insts.append(
                (
                    slot,
                    inst.opcode.value,
                    None if inst.dst is None else _operand_sig(inst.dst),
                    None if inst.pred is None else (inst.pred.index, inst.pred_negate),
                    tuple(_operand_sig(s) for s in inst.srcs),
                )
            )
        seg.append(tuple(insts))
    return (start_pc, tuple(seg))


class _VliwGen:
    """Emits the straight-line function of one branch-free segment."""

    def __init__(self, bundles, start_pc: int, end_pc: int, slot_fus,
                 cdrf, cprf, fault, l1_geom: Optional[Tuple[int, int]] = None,
                 icache_geom: Optional[Tuple[int, int, int]] = None,
                 n_lanes: Optional[int] = None) -> None:
        self.bundles = bundles
        self.start_pc = start_pc
        self.end_pc = end_pc
        self.slot_fus = slot_fus
        self.cdrf_mask = (1 << cdrf.width) - 1
        self.ports = (cdrf.read_ports, cdrf.write_ports,
                      cprf.read_ports, cprf.write_ports)
        self.fault = fault
        self.l1_geom = l1_geom  # (n_banks, size_bytes); batch mode only
        self.icache_geom = icache_geom  # (n_lines, bundles_per_line, miss_penalty)
        self.n_lanes = n_lanes
        self.batch = n_lanes is not None
        self.pool, self.pool_index = _vliw_pool_map(bundles, start_pc, end_pc)
        self.wb_counter = 0
        groups = [group_of(inst.opcode)
                  for _pc, _slot, inst in _iter_vliw_sites(bundles, start_pc, end_pc)]
        self.has_mem = any(g in (OpGroup.LDMEM, OpGroup.STMEM) for g in groups)
        self.has_load = OpGroup.LDMEM in groups

    # -- operand helpers -----------------------------------------------

    def _read(self, lines: List[str], ind: str, pc: int, slot: int,
              i: int, operand) -> str:
        if isinstance(operand, Reg):
            lines.append(ind + "n_cdrf_r += 1")
            return "CD[%d]" % operand.index
        if isinstance(operand, PredReg):
            lines.append(ind + "n_cprf_r += 1")
            return "CP[%d]" % operand.index
        if isinstance(operand, Imm):
            return "imm_%d" % self.pool_index[(pc, slot, i)]
        raise self.fault("bad VLIW operand: %r" % (operand,))

    def _check_ports(self, live) -> None:
        """Static worst case of one bundle against the central-RF ports
        (see :meth:`_CgaGen._check_port_pressure` for the rationale)."""
        r_d = r_p = w_d = w_p = 0
        for _slot, inst in live:
            if inst.pred is not None:
                r_p += 1
            group = group_of(inst.opcode)
            for operand in inst.srcs:
                if isinstance(operand, Reg):
                    r_d += 1
                elif isinstance(operand, PredReg):
                    r_p += 1
            if group is OpGroup.BRANCH:
                if inst.opcode in (Opcode.JMPL, Opcode.BRL):
                    w_d += 1  # link write happens at issue time
            elif group in (OpGroup.LDMEM, *DATAFLOW_GROUPS) and inst.dst is not None:
                if isinstance(inst.dst, PredReg):
                    w_p += 1
                else:
                    w_d += 1
        for used, ports, what in (
            (r_d, self.ports[0], "CDRF reads"),
            (w_d, self.ports[1], "CDRF writes"),
            (r_p, self.ports[2], "CPRF reads"),
            (w_p, self.ports[3], "CPRF writes"),
        ):
            if used > ports:
                raise CodegenUnsupported(
                    "VLIW segment at pc %d: worst-case %s (%d) exceed %d ports"
                    % (self.start_pc, what, used, ports)
                )

    # -- per-instruction issue emission --------------------------------

    def _emit_inst(self, lines: List[str], ind: str, pc: int, slot: int,
                   inst, wb: Optional[dict], last_bundle: bool) -> None:
        group = group_of(inst.opcode)
        weight = op_weight(inst.opcode)
        fu = self.slot_fus[slot] if slot < len(self.slot_fus) else slot
        body = ind
        if inst.pred is not None:
            lines.append(ind + "n_cprf_r += 1")
            if inst.pred_negate:
                lines.append(ind + "if CP[%d] != 0:" % inst.pred.index)
            else:
                lines.append(ind + "if CP[%d] == 0:" % inst.pred.index)
            lines.append(ind + "    squashed += 1")
            lines.append(ind + "else:")
            body = ind + "    "
        lines.append(body + "n_fu%d += %d" % (fu, weight))
        lines.append(body + "n_g_%s += %d" % (group.name, weight))
        lines.append(body + "vliw_ops += %d" % weight)
        if group in DATAFLOW_GROUPS:
            arity = operand_count(inst.opcode)
            names = []
            for i, operand in enumerate(inst.srcs):
                names.append(self._read(lines, body, pc, slot, i, operand))
            if wb is None:
                return  # no destination: reads already accounted
            target = wb["var"]
            if group in (OpGroup.SIMD1, OpGroup.SIMD2):
                a = names[0]
                if a != "a":
                    lines.append(body + "a = %s" % a)
                    a = "a"
                b = None
                if arity == 2:
                    b = names[1]
                    if b != "b":
                        lines.append(body + "b = %s" % b)
                        b = "b"
                _emit_simd(lines, body, inst.opcode, target, a, b)
            else:
                use = names[:arity] + ["0"] * (2 - min(arity, 2))
                lines.append(
                    body + "%s = %s" % (target, _SCALAR_EXPR[inst.opcode](use[0], use[1]))
                )
        elif group is OpGroup.LDMEM:
            if len(inst.srcs) < 2:
                raise self.fault("%s needs base and offset sources" % inst.opcode.value)
            info = memops.mem_info(inst.opcode)
            base = self._read(lines, body, pc, slot, 0, inst.srcs[0])
            off = inst.srcs[1]
            if isinstance(off, Imm):
                lines.append(
                    body + "addr = (((%s) & 4294967295) + imm_%d) & 4294967295"
                    % (base, self.pool_index[(pc, slot, 1)])
                )
            else:
                offx = self._read(lines, body, pc, slot, 1, off)
                lines.append(
                    body + "addr = (((%s) & 4294967295) + ((%s) & 4294967295)) & 4294967295"
                    % (base, offx)
                )
            if self.batch:
                _emit_inline_read(lines, body, "cycle", info.size, *self.l1_geom)
            else:
                lines.append(body + "raw, extra = timed_read(cycle, addr, %d)" % info.size)
            if wb is None:
                return
            target = wb["var"]
            if info.size == 8:
                lines.append(body + "%s = raw" % target)
            elif info.signed:
                hb = 1 << (info.size * 8 - 1)
                lines.append(body + "%s = ((raw ^ %d) - %d) & 4294967295" % (target, hb, hb))
            else:
                lines.append(body + "%s = raw & %d" % (target, (1 << (info.size * 8)) - 1))
            lines.append(body + "%s = cycle + %d + extra" % (wb["rdy"], latency_of(inst.opcode)))
        elif group is OpGroup.STMEM:
            if len(inst.srcs) != 3:
                raise self.fault("%s needs base, offset and value sources" % inst.opcode.value)
            if not isinstance(inst.srcs[1], Imm):
                raise self.fault("stores use immediate offsets (Table 1)")
            info = memops.mem_info(inst.opcode)
            base = self._read(lines, body, pc, slot, 0, inst.srcs[0])
            lines.append(
                body + "addr = (((%s) & 4294967295) + imm_%d) & 4294967295"
                % (base, self.pool_index[(pc, slot, 1)])
            )
            sv = self._read(lines, body, pc, slot, 2, inst.srcs[2])
            mask = (1 << (info.size * 8)) - 1
            if self.batch:
                # The write's conflict delay is ignored in VLIW mode
                # (same as the per-packet call discarding the return).
                lines.append(body + "v_st = (%s) & %d" % (sv, mask))
                _emit_inline_write(lines, body, "cycle", info.size, *self.l1_geom)
            else:
                lines.append(
                    body + "timed_write(cycle, addr, (%s) & %d, %d)" % (sv, mask, info.size)
                )
        elif group is OpGroup.BRANCH:
            latency = latency_of(inst.opcode)
            lines.append(body + "taken = True")
            lines.append(body + "bl = %d" % latency)
            target_src = inst.srcs[0]
            if inst.opcode in (Opcode.JMP, Opcode.JMPL):
                if isinstance(target_src, Imm):
                    lines.append(body + "tgt = imm_%d" % self.pool_index[(pc, slot, 0)])
                else:
                    lines.append(body + "n_cdrf_r += 1")
                    lines.append(body + "tgt = CD[%d] & 4294967295" % target_src.index)
            else:  # br / brl: PC-relative in bundle units
                if not isinstance(target_src, Imm):
                    raise self.fault("relative branch needs an immediate offset")
                lines.append(
                    body + "tgt = %d + imm_%d" % (pc + 1, self.pool_index[(pc, slot, 0)])
                )
            if inst.opcode in (Opcode.JMPL, Opcode.BRL):
                link = inst.dst.index if inst.dst is not None else 9
                lines.append(body + "n_cdrf_w += 1")
                lines.append(body + "CD[%d] = %d" % (link, (pc + 1) & self.cdrf_mask))
                lines.append(body + "reg_ready[%d] = cycle + %d" % (link, latency))
        else:  # control
            if inst.opcode is Opcode.CGA:
                if inst.srcs:
                    if not isinstance(inst.srcs[0], Imm):
                        raise CodegenUnsupported("cga kernel id must be an immediate")
                    kid = "imm_%d" % self.pool_index[(pc, slot, 0)]
                else:
                    kid = "0"
                lines.append(
                    body + "stop = _Stop('cga', kernel_id=%s, next_pc=%d)" % (kid, pc + 1)
                )
            elif inst.opcode is Opcode.HALT:
                lines.append(body + "stop = _Stop('halt', next_pc=%d)" % (pc + 1))
            else:
                lines.append(body + "pass")

    # -- whole-function assembly ---------------------------------------

    def generate(self) -> str:
        lines: List[str] = []
        lines.append(
            "def _vliw_run(start_cycle, max_cycle, imms, CD, CP, reg_ready, pred_ready,"
            " icache_fetch, timed_read, timed_write, stats, tracer):"
        )
        self._emit_lane(lines, "    ")
        lines.append("    return stop, next_pc, cycle")
        return "\n".join(lines) + "\n"

    def generate_batch(self) -> str:
        """Lane-batched variant of :meth:`generate`: structure-of-arrays
        arguments, the scratchpad *and* the instruction cache inlined
        (per-lane tag lists with compile-time line index/tag constants),
        tracer hooks dropped — the batch driver requires tracing
        disabled.  Per-lane results land in ``stops``/``next_pcs``/
        ``cycles_out``; a faulting lane lands its exception in
        ``faults[lane]`` (partial state unusable, re-run per-packet)
        while the remaining lanes complete."""
        lines: List[str] = []
        w = lines.append
        w("def _vliw_run_batch(start_cycles, max_cycle, imms_s, CD_s, CP_s,"
          " reg_ready_s, pred_ready_s, icache_s, mem_s, stats_s,"
          " stops, next_pcs, cycles_out, faults):")
        if self.has_load:
            w("    _fb = int.from_bytes")
        w("    for _b in range(%d):" % self.n_lanes)
        w("        try:")
        ind = "            "
        w(ind + "start_cycle = start_cycles[_b]")
        w(ind + "imms = imms_s[_b]")
        w(ind + "CD = CD_s[_b]")
        w(ind + "CP = CP_s[_b]")
        w(ind + "reg_ready = reg_ready_s[_b]")
        w(ind + "pred_ready = pred_ready_s[_b]")
        w(ind + "IT = icache_s[_b]._tags")
        w(ind + "stats = stats_s[_b]")
        if self.has_mem:
            w(ind + "_sp = mem_s[_b]")
            w(ind + "M = _sp._mem")
            w(ind + "BNF = _sp._bank_next_free")
        self._emit_lane(lines, ind)
        w(ind + "stops[_b] = stop")
        w(ind + "next_pcs[_b] = next_pc")
        w(ind + "cycles_out[_b] = cycle")
        w("        except _BF as exc:")
        w("            faults[_b] = exc")
        return "\n".join(lines) + "\n"

    def _emit_fetch(self, lines: List[str], bind: str, pc: int) -> None:
        """Instruction fetch: a bound-method call per-packet, the cache
        probe inlined with compile-time index/tag constants in batch
        mode (``pc`` is a literal, so both are)."""
        w = lines.append
        if not self.batch:
            w(bind + "miss = icache_fetch(%d, cycle)" % pc)
            w(bind + "if miss:")
            w(bind + "    add_stall(_IC, miss)")
            w(bind + "    vliw_cycles += miss")
            w(bind + "    cycle += miss")
            return
        n_lines_, bundles_per_line, penalty = self.icache_geom
        line_addr = pc // bundles_per_line
        index = line_addr % n_lines_
        tag = line_addr // n_lines_
        w(bind + "if IT[%d] == %d:" % (index, tag))
        w(bind + "    n_ic_h += 1")
        w(bind + "else:")
        w(bind + "    IT[%d] = %d" % (index, tag))
        w(bind + "    n_ic_m += 1")
        if penalty > 0:
            w(bind + "    add_stall(_IC, %d)" % penalty)
            w(bind + "    vliw_cycles += %d" % penalty)
            w(bind + "    cycle += %d" % penalty)

    def _emit_lane(self, lines: List[str], ind: str) -> None:
        w = lines.append
        n_imms = len(self.pool)
        if n_imms == 1:
            w(ind + "imm_0 = imms[0]")
        elif n_imms > 1:
            w(ind + ", ".join("imm_%d" % i for i in range(n_imms)) + " = imms")
        # Issue counters accumulate in one integer local per FU / op
        # group the segment can touch and flush once in the epilogue: a
        # dict update per issued op is the dominant cost of a warm lane.
        used_fus: List[int] = []
        used_groups: List[str] = []
        for pc in range(self.start_pc, self.end_pc):
            for slot, inst in enumerate(self.bundles[pc]):
                if inst is None or inst.opcode is Opcode.NOP:
                    continue
                fu = self.slot_fus[slot] if slot < len(self.slot_fus) else slot
                if fu not in used_fus:
                    used_fus.append(fu)
                gname = group_of(inst.opcode).name
                if gname not in used_groups:
                    used_groups.append(gname)
        used_fus.sort()
        if used_fus:
            w(ind + " = ".join("n_fu%d" % fu for fu in used_fus) + " = 0")
        if used_groups:
            w(ind + " = ".join("n_g_%s" % g for g in used_groups) + " = 0")
        w(ind + "add_stall = stats.add_stall")
        w(ind + "rrg = reg_ready.get")
        w(ind + "prg = pred_ready.get")
        w(ind + "cycle = start_cycle")
        w(ind + "vliw_cycles = 0")
        w(ind + "vliw_ops = 0")
        w(ind + "squashed = 0")
        w(ind + "n_cdrf_r = n_cdrf_w = n_cprf_r = n_cprf_w = 0")
        if self.batch:
            if self.has_mem:
                w(ind + "n_l1r = n_l1w = n_bc = bc_stall = 0")
            w(ind + "n_ic_h = n_ic_m = 0")
        w(ind + "stop = None")
        w(ind + "next_pc = %d" % self.end_pc)
        last_pc = self.end_pc - 1
        has_branch = any(
            inst is not None
            and inst.opcode is not Opcode.NOP
            and group_of(inst.opcode) is OpGroup.BRANCH
            for inst in (self.bundles[last_pc] if self.end_pc > self.start_pc else ())
        )
        if has_branch:
            # A predicated terminator branch may squash: pre-clear the
            # taken flag so the epilogue always sees a bound value.
            w(ind + "taken = False")
            w(ind + "bl = 0")
            w(ind + "tgt = 0")
        w(ind + "try:")
        bind = ind + "    "
        for pc in range(self.start_pc, self.end_pc):
            live = [
                (slot, inst)
                for slot, inst in enumerate(self.bundles[pc])
                if inst is not None and inst.opcode is not Opcode.NOP
            ]
            self._check_ports(live)
            w(bind + "# pc %d" % pc)
            w(bind + "if max_cycle is not None and cycle > max_cycle:")
            w(bind + "    raise _VF('exceeded %d cycles in VLIW mode' % max_cycle)")
            self._emit_fetch(lines, bind, pc)
            # Scoreboard interlock over statically-deduped source lists.
            need_regs: List[int] = []
            need_preds: List[int] = []
            for _slot, inst in live:
                for operand in inst.srcs:
                    if isinstance(operand, Reg) and operand.index not in need_regs:
                        need_regs.append(operand.index)
                    elif isinstance(operand, PredReg) and operand.index not in need_preds:
                        need_preds.append(operand.index)
                if inst.pred is not None and inst.pred.index not in need_preds:
                    need_preds.append(inst.pred.index)
            if need_regs or need_preds:
                w(bind + "need = 0")
                for index in need_regs:
                    w(bind + "t = rrg(%d, 0)" % index)
                    w(bind + "if t > need:")
                    w(bind + "    need = t")
                for index in need_preds:
                    w(bind + "t = prg(%d, 0)" % index)
                    w(bind + "if t > need:")
                    w(bind + "    need = t")
                w(bind + "if need > cycle:")
                w(bind + "    wait = need - cycle")
                w(bind + "    add_stall(_IL, wait)")
                w(bind + "    vliw_cycles += wait")
                if not self.batch:
                    w(bind + "    if tracer.enabled:")
                    w(bind + "        tracer.instant('stall.interlock', cycle, cat='stall',"
                      " args={'pc': %d, 'cycles': wait})" % pc)
                w(bind + "    cycle = need")
            # Issue: pre-clear predicated writeback slots, then the
            # instructions in slot order; two-phase write-back follows.
            wbs = []
            for slot, inst in live:
                group = group_of(inst.opcode)
                wb = None
                if inst.dst is not None and (
                    group is OpGroup.LDMEM or group in DATAFLOW_GROUPS
                ):
                    j = self.wb_counter
                    self.wb_counter += 1
                    wb = {
                        "var": "wb%d" % j,
                        "rdy": "rdy%d" % j,
                        "is_pred": isinstance(inst.dst, PredReg),
                        "index": inst.dst.index,
                        "latency": latency_of(inst.opcode),
                        "is_load": group is OpGroup.LDMEM,
                        "guarded": inst.pred is not None,
                    }
                    wbs.append(wb)
                    if wb["guarded"]:
                        w(bind + "%s = _A" % wb["var"])
                self._emit_inst(lines, bind, pc, slot, inst, wb, pc == last_pc)
            for wb in wbs:
                sub = bind
                if wb["guarded"]:
                    w(bind + "if %s is not _A:" % wb["var"])
                    sub = bind + "    "
                ready = "%s" % wb["rdy"] if wb["is_load"] else "cycle + %d" % wb["latency"]
                if wb["is_pred"]:
                    w(sub + "n_cprf_w += 1")
                    w(sub + "CP[%d] = %s & 1" % (wb["index"], wb["var"]))
                    w(sub + "pred_ready[%d] = %s" % (wb["index"], ready))
                else:
                    w(sub + "n_cdrf_w += 1")
                    w(sub + "CD[%d] = %s & %d" % (wb["index"], wb["var"], self.cdrf_mask))
                    w(sub + "reg_ready[%d] = %s" % (wb["index"], ready))
            w(bind + "vliw_cycles += 1")
            w(bind + "cycle += 1")
        # Terminator epilogue: the last bundle may have taken a branch
        # (stop wins over a taken branch, exactly like the decoded loop).
        if has_branch:
            w(bind + "if stop is None and taken:")
            w(bind + "    dead = bl - 1")
            w(bind + "    add_stall(_BR, dead)")
            w(bind + "    vliw_cycles += dead")
            if not self.batch:
                w(bind + "    if tracer.enabled:")
                w(bind + "        tracer.instant('stall.branch', cycle, cat='stall',"
                  " args={'pc': %d, 'target': tgt, 'cycles': dead})" % last_pc)
            w(bind + "    cycle += dead")
            w(bind + "    next_pc = tgt")
        w(ind + "finally:")
        if used_fus:
            w(ind + "    fu_ops = stats.fu_ops")
            for fu in used_fus:
                w(ind + "    fu_ops[%d] += n_fu%d" % (fu, fu))
        if used_groups:
            w(ind + "    op_groups = stats.op_groups")
            for g in used_groups:
                w(ind + "    op_groups[_G_%s] += n_g_%s" % (g, g))
        w(ind + "    stats.vliw_cycles += vliw_cycles")
        w(ind + "    stats.vliw_ops += vliw_ops")
        w(ind + "    stats.squashed_ops += squashed")
        w(ind + "    stats.cdrf_reads += n_cdrf_r")
        w(ind + "    stats.cdrf_writes += n_cdrf_w")
        w(ind + "    stats.cprf_reads += n_cprf_r")
        w(ind + "    stats.cprf_writes += n_cprf_w")
        if self.batch:
            if self.has_mem:
                w(ind + "    stats.l1_reads += n_l1r")
                w(ind + "    stats.l1_writes += n_l1w")
                w(ind + "    stats.l1_bank_conflicts += n_bc")
                w(ind + "    stats.l1_conflict_stall_cycles += bc_stall")
            w(ind + "    stats.icache_hits += n_ic_h")
            w(ind + "    stats.icache_misses += n_ic_m")


def vliw_runner(bundles, start_pc: int, slot_fus, cdrf, cprf, fault):
    """Return ``(fn, imms)`` for the straight-line segment at *start_pc*.

    Raises :class:`CodegenUnsupported` when the static port-pressure
    proof fails (the engine pins a fallback-to-decoded marker), and
    *fault* for malformed bundles (same messages as the decoded tier).
    """
    from repro.sim.vliw import StopEvent  # lazy: vliw.py imports this module

    end_pc = vliw_segment_end(bundles, start_pc)
    key = (
        "vliw",
        tuple(slot_fus),
        (cdrf.width, cdrf.read_ports, cdrf.write_ports),
        (cprf.read_ports, cprf.write_ports),
        vliw_signature(bundles, start_pc, end_pc),
    )

    def gen() -> str:
        return _VliwGen(bundles, start_pc, end_pc, slot_fus, cdrf, cprf, fault).generate()

    source = _cached_source(key, "vliw", "pc%d" % start_pc, gen)
    fn = _compiled_fn(key, source, "_vliw_run", {"_VF": fault, "_Stop": StopEvent})
    return fn, tuple(_vliw_pool_map(bundles, start_pc, end_pc)[0])


def vliw_batch_runner(bundles, start_pc: int, slot_fus, cdrf, cprf,
                      scratchpad, icache, fault, n_lanes: int):
    """Return ``(fn, end_pc)`` — the lane-batched function for the
    straight-line segment at *start_pc* and the segment's exclusive end.

    The batch width, the L1 geometry and the icache geometry all join
    the cache key because the memory and instruction-cache models are
    inlined into the generated source (the per-packet variant reaches
    them through bound methods, so its key can omit them).  Per-lane
    immediate pools come from the caller via ``_vliw_pool_map`` over
    each lane's (possibly ``patch_constants``-patched) bundles.
    """
    from repro.sim.vliw import StopEvent  # lazy: vliw.py imports this module

    end_pc = vliw_segment_end(bundles, start_pc)
    l1_geom = (scratchpad.n_banks, scratchpad.size_bytes)
    icache_geom = (icache.n_lines, icache.bundles_per_line, icache.miss_penalty)
    key = (
        "vliw-batch",
        int(n_lanes),
        tuple(slot_fus),
        (cdrf.width, cdrf.read_ports, cdrf.write_ports),
        (cprf.read_ports, cprf.write_ports),
        l1_geom,
        icache_geom,
        vliw_signature(bundles, start_pc, end_pc),
    )

    def gen() -> str:
        return _VliwGen(bundles, start_pc, end_pc, slot_fus, cdrf, cprf, fault,
                        l1_geom=l1_geom, icache_geom=icache_geom,
                        n_lanes=int(n_lanes)).generate_batch()

    source = _cached_source(key, "vliw-batch", "pc%d" % start_pc, gen)
    fn = _compiled_fn(key, source, "_vliw_run_batch",
                      {"_VF": fault, "_Stop": StopEvent, "_ME": MemoryError_,
                       "_BF": (fault, MemoryError_)})
    return fn, end_pc


def vliw_imms(bundles, start_pc: int, end_pc: int) -> Tuple[int, ...]:
    """One lane's immediate pool for the segment, in canonical order."""
    return tuple(_vliw_pool_map(bundles, start_pc, end_pc)[0])
