"""Debug views: human-readable listings of programs and CGA schedules.

The paper's prototyping flow included a dedicated debug interface; its
software equivalent here renders compiled artefacts for inspection:

* :func:`format_program` — the VLIW bundle stream as assembly;
* :func:`format_kernel` — a CGA kernel's configuration contexts as a
  unit-by-cycle grid with mux selections, the view a mapping engineer
  uses to eyeball a modulo schedule.
"""

from __future__ import annotations

from typing import List

from repro.sim.program import (
    CgaKernel,
    CgaOp,
    DstKind,
    Program,
    SrcKind,
    SrcSel,
)


def _sel_text(sel: SrcSel) -> str:
    base = {
        SrcKind.SELF: "self",
        SrcKind.WIRE: "fu%d" % sel.value,
        SrcKind.LRF: "l%d" % sel.value,
        SrcKind.CDRF: "r%d" % sel.value,
        SrcKind.CPRF: "p%d" % sel.value,
        SrcKind.IMM: (
            "#%d" % sel.value if sel.value < (1 << 32) else "#0x%x" % sel.value
        ),
    }[sel.kind]
    if sel.init is not None:
        return "phi(%s, init=%d)" % (base, sel.init)
    return base


def _op_text(op: CgaOp) -> str:
    srcs = ", ".join(_sel_text(s) for s in op.srcs)
    text = "%s %s" % (op.opcode.value, srcs)
    for dst in op.dsts:
        suffix = "@last" if dst.last_iteration_only else ""
        kind = {DstKind.LRF: "l", DstKind.CDRF: "r", DstKind.CPRF: "p"}[dst.kind]
        text += " ->%s%d%s" % (kind, dst.index, suffix)
    if op.pred is not None:
        sense = "!" if op.pred_negate else ""
        text = "(%s%s) %s" % (sense, _sel_text(op.pred), text)
    return "%s [s%d]" % (text, op.stage)


def format_kernel(kernel: CgaKernel) -> str:
    """Render a kernel's contexts: one line per (cycle slot, unit)."""
    lines = [
        "kernel %s: II=%d, %d stages, trip=%s, %d preloads"
        % (
            kernel.name,
            kernel.ii,
            kernel.stage_count,
            kernel.trip_count
            if kernel.trip_count is not None
            else "r%d" % kernel.trip_count_reg,
            len(kernel.preloads),
        )
    ]
    for preload in kernel.preloads:
        lines.append(
            "  preload fu%d.l%d <- r%d"
            % (preload.fu, preload.lrf_index, preload.cdrf_reg)
        )
    for phase, context in enumerate(kernel.contexts):
        lines.append("  cycle %d:" % phase)
        for fu in sorted(context.ops):
            lines.append("    fu%-2d  %s" % (fu, _op_text(context.ops[fu])))
    return "\n".join(lines)


def format_program(program: Program) -> str:
    """Render the VLIW stream and every kernel."""
    lines = ["program %s: %d bundles, %d kernels" % (
        program.name, len(program.bundles), len(program.kernels))]
    for pc, bundle in enumerate(program.bundles):
        slots = " | ".join(
            str(inst) if inst is not None else "nop" for inst in bundle.slots
        )
        lines.append("%4d: %s" % (pc, slots))
    for kid in sorted(program.kernels):
        lines.append("")
        lines.append("[kernel %d]" % kid)
        lines.append(format_kernel(program.kernels[kid]))
    return "\n".join(lines)


def schedule_occupancy(kernel: CgaKernel, n_units: int = 16) -> List[List[str]]:
    """Occupancy grid (II rows x units): opcode mnemonics or ''."""
    grid = [["" for _ in range(n_units)] for _ in range(kernel.ii)]
    for phase, context in enumerate(kernel.contexts):
        for fu, op in context.ops.items():
            grid[phase][fu] = op.opcode.value
    return grid
