"""Pre-decode layer: lower kernels and bundle streams into execution-ready form.

The reference interpreters (:meth:`CgaEngine.run_reference`,
:meth:`VliwEngine.run_reference`) re-derive static facts on every
simulated cycle: they sort the context's operations, re-resolve each
opcode's group and latency, re-check functional-unit capabilities and
wire connectivity, and walk the semantics if-chains.  All of those facts
are properties of the *program*, not of the cycle being simulated.

This module lowers each :class:`~repro.sim.program.CgaKernel` and each
:class:`~repro.sim.program.VliwBundle` **once** into flat structures
holding everything the inner loop needs:

* operations pre-sorted by functional unit, with opcode group, latency,
  IPC weight and the bound semantic handler
  (:func:`repro.isa.semantics.handler_for`) attached;
* source selections compiled to *reader closures* over the engine's
  register files and output latches — the multiplexer decode, phi
  handling and immediate masking happen at decode time;
* destination selections compiled to writer closures with the central-RF
  port capability already checked;
* per-context/per-kernel invariants (presence of memory operations,
  central-register-file traffic, scoreboard source lists) hoisted so the
  engines can skip whole phases for contexts that cannot need them.

Decoding validates the same structural properties the reference
interpreters check dynamically (FU capability, wire connectivity,
local/central RF availability, operand arity) and raises the engine's
fault type eagerly; a kernel that decodes cleanly executes with no
per-cycle checks.  The engines cache decoded programs keyed by the
program object, so steady-state simulation touches this module only on
the first entry into a kernel or bundle.

Correctness contract: for every well-formed program, the decoded
execution path produces **bit-identical** architectural state, cycle
counts and :class:`~repro.sim.stats.ActivityStats` (per-cause stall
counters included) to the reference interpreters.
``tests/sim/test_differential.py`` enforces this by running every
kernel shape under both paths.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple, Type

from repro.arch.config import CgaArchitecture
from repro.isa.bits import MASK64, sext
from repro.isa.instruction import Imm, Instruction, PredReg, Reg
from repro.isa.opcodes import (
    MAX_OP_LATENCY,
    Opcode,
    OpGroup,
    group_of,
    latency_of,
    op_weight,
)
from repro.isa.semantics import DATAFLOW_GROUPS, handler_for, operand_count
from repro.sim import memops
from repro.sim.program import CgaKernel, CgaOp, DstKind, SrcKind, SrcSel, VliwBundle
from repro.sim.regfile import LocalRegisterFile, PredicateFile, RegisterFile
from repro.sim.stats import ActivityStats

#: Commit-ring length: an operation issued at logical cycle *c* becomes
#: visible at most ``MAX_OP_LATENCY`` cycles later, so a ring of this
#: size never wraps onto an un-committed slot.
COMMIT_RING_SLOTS = MAX_OP_LATENCY + 1

#: Operation classes the decoded inner loops dispatch on (int compares
#: instead of enum identity checks).
KIND_DATAFLOW = 0
KIND_LOAD = 1
KIND_STORE = 2
KIND_BRANCH = 3
KIND_CONTROL = 4

Reader = Callable[[int], int]


def _load_converter(op: Opcode) -> Tuple[int, Callable[[int], int]]:
    """Return ``(size_bytes, raw -> register-value converter)`` for a load."""
    info = memops.mem_info(op)
    if info.size == 8:
        return 8, lambda raw: raw
    width = info.size * 8
    if info.signed:
        return info.size, lambda raw: sext(raw, width, 32)
    mask = (1 << width) - 1
    return info.size, lambda raw: raw & mask


# ----------------------------------------------------------------------
# CGA kernel decoding
# ----------------------------------------------------------------------


class DecodedCgaOp:
    """One execution-ready CGA operation slot."""

    __slots__ = (
        "fu",
        "opcode",
        "group",
        "kind",
        "stage",
        "latency",
        "weight",
        "compute",
        "dsts",
        "pred_reader",
        "pred_negate",
        # memory operations only:
        "base_reader",
        "off_reader",
        "off_const",
        "mem_size",
        "load_convert",
        "store_reader",
        "store_mask",
    )

    def __init__(self, fu: int, op: CgaOp) -> None:
        self.fu = fu
        self.opcode = op.opcode
        self.group = group_of(op.opcode)
        self.stage = op.stage
        self.latency = latency_of(op.opcode)
        self.weight = op_weight(op.opcode)
        self.pred_negate = op.pred_negate
        self.compute: Optional[Callable[[int], int]] = None
        self.dsts: Tuple[Tuple[Callable[[int], None], bool], ...] = ()
        self.pred_reader: Optional[Reader] = None
        self.base_reader: Optional[Reader] = None
        self.off_reader: Optional[Reader] = None
        self.off_const = 0
        self.mem_size = 0
        self.load_convert: Optional[Callable[[int], int]] = None
        self.store_reader: Optional[Reader] = None
        self.store_mask = 0


class DecodedContext:
    """One configuration context, lowered: ops pre-sorted by FU."""

    __slots__ = ("ops", "has_mem")

    def __init__(self, ops: Tuple[DecodedCgaOp, ...]) -> None:
        self.ops = ops
        self.has_mem = any(op.kind != KIND_DATAFLOW for op in ops)


class DecodedKernel:
    """A :class:`CgaKernel` lowered for the fast execution path.

    Holds a reference to the source kernel so the identity-keyed decode
    cache can never alias two kernels (the reference pins the id).
    """

    __slots__ = (
        "kernel",
        "contexts",
        "touches_central",
        "unpred_counts",
        "min_stage",
        "max_stage",
    )

    def __init__(
        self,
        kernel: CgaKernel,
        contexts: List[DecodedContext],
        touches_central: bool,
    ) -> None:
        self.kernel = kernel
        self.contexts = contexts
        self.touches_central = touches_central
        #: An unpredicated op at stage *s* executes exactly
        #: ``min(trip, trip + stage_count - 1 - s)`` times, so its
        #: operation counters are booked in one batch per kernel run.
        counts: List[Tuple[int, OpGroup, int, int]] = []
        min_stage = 0
        max_stage = 0
        for ctx in contexts:
            for op in ctx.ops:
                if op.stage > max_stage:
                    max_stage = op.stage
                if op.stage < min_stage:
                    min_stage = op.stage
                if op.pred_reader is None:
                    counts.append((op.fu, op.group, op.weight, op.stage))
        self.unpred_counts = tuple(counts)
        #: Stage extremes, for the engine's steady-state window (the
        #: logical-cycle range in which every op is inside the trip).
        self.min_stage = min_stage
        self.max_stage = max_stage


class _CgaOpDecoder:
    """Compiles one kernel's operations against one engine's state."""

    def __init__(
        self,
        arch: CgaArchitecture,
        cdrf: RegisterFile,
        cprf: PredicateFile,
        local_rfs: Dict[int, LocalRegisterFile],
        out_latch: List[int],
        stats: ActivityStats,
        fault: Type[Exception],
    ) -> None:
        self.arch = arch
        self.cdrf = cdrf
        self.cprf = cprf
        self.local_rfs = local_rfs
        self.out_latch = out_latch
        self.stats = stats
        self.fault = fault
        self.touches_central = False

    # -- source multiplexers -------------------------------------------

    def reader(self, fu: int, sel: SrcSel) -> Reader:
        """Compile one source selection to a ``reader(iteration)`` closure.

        The closure reproduces the reference ``_read_src`` exactly,
        including its statistics side effects (interconnect transfer and
        register-file access counts) and the phi rule that iteration 0
        reads the initial immediate *without* touching the normal
        source.
        """
        kind = sel.kind
        base: Reader
        if kind is SrcKind.SELF:
            latch = self.out_latch

            def base(iteration: int, _latch=latch, _fu=fu) -> int:
                return _latch[_fu]

        elif kind is SrcKind.WIRE:
            if not self.arch.interconnect.connected(sel.value, fu):
                raise self.fault(
                    "no wire from FU%d to FU%d in %s" % (sel.value, fu, self.arch.name)
                )
            latch, stats, src = self.out_latch, self.stats, sel.value

            def base(iteration: int, _latch=latch, _stats=stats, _src=src) -> int:
                _stats.interconnect_transfers += 1
                return _latch[_src]

        elif kind is SrcKind.LRF:
            if fu not in self.local_rfs:
                raise self.fault("FU%d has no local register file" % fu)
            lrf, index = self.local_rfs[fu], sel.value

            def base(iteration: int, _lrf=lrf, _index=index) -> int:
                return _lrf.read(_index)

        elif kind is SrcKind.CDRF:
            self._require_central_port(fu)
            rf, index = self.cdrf, sel.value

            def base(iteration: int, _rf=rf, _index=index) -> int:
                return _rf.read(_index)

        elif kind is SrcKind.CPRF:
            self._require_central_port(fu)
            rf, index = self.cprf, sel.value

            def base(iteration: int, _rf=rf, _index=index) -> int:
                return _rf.read(_index)

        elif kind is SrcKind.IMM:
            const = sel.value & MASK64

            def base(iteration: int, _const=const) -> int:
                return _const

        else:  # pragma: no cover - SrcKind is a closed enum
            raise self.fault("unknown source kind %r" % (kind,))

        if sel.init is None:
            return base
        init = sel.init & MASK64

        def phi(iteration: int, _init=init, _base=base) -> int:
            return _init if iteration == 0 else _base(iteration)

        return phi

    def _require_central_port(self, fu: int) -> None:
        if not self.arch.fus[fu].has_cdrf_port:
            raise self.fault("FU%d has no central RF port" % fu)
        self.touches_central = True

    # -- destinations ---------------------------------------------------

    def writer(self, fu: int, kind: DstKind, index: int) -> Callable[[int], None]:
        if kind is DstKind.LRF:
            if fu not in self.local_rfs:
                raise self.fault("FU%d has no local register file" % fu)
            lrf = self.local_rfs[fu]
            return lambda value, _lrf=lrf, _index=index: _lrf.write(_index, value)
        if kind is DstKind.CDRF:
            self._require_central_port(fu)
            rf = self.cdrf
            return lambda value, _rf=rf, _index=index: _rf.write(_index, value)
        if kind is DstKind.CPRF:
            self._require_central_port(fu)
            rf = self.cprf
            return lambda value, _rf=rf, _index=index: _rf.write(_index, value & 1)
        raise self.fault("unknown destination kind %r" % (kind,))  # pragma: no cover

    # -- operations -----------------------------------------------------

    def decode_op(self, fu: int, op: CgaOp) -> DecodedCgaOp:
        if fu >= self.arch.n_units:
            raise self.fault("context names FU%d beyond %d units" % (fu, self.arch.n_units))
        if not self.arch.fus[fu].supports(op.opcode):
            raise self.fault("FU%d cannot execute %s" % (fu, op.opcode.value))
        if op.stage < 0:
            raise self.fault("FU%d op has negative pipeline stage %d" % (fu, op.stage))
        dec = DecodedCgaOp(fu, op)
        if op.pred is not None:
            dec.pred_reader = self.reader(fu, op.pred)
        dec.dsts = tuple(
            (self.writer(fu, dst.kind, dst.index), dst.last_iteration_only)
            for dst in op.dsts
        )
        group = dec.group
        if group is OpGroup.LDMEM:
            dec.kind = KIND_LOAD
            self._decode_mem_operands(dec, op)
            dec.mem_size, dec.load_convert = _load_converter(op.opcode)
        elif group is OpGroup.STMEM:
            dec.kind = KIND_STORE
            if len(op.srcs) < 3:
                raise self.fault("%s needs base, offset and value sources" % op.opcode.value)
            self._decode_mem_operands(dec, op)
            info = memops.mem_info(op.opcode)
            dec.mem_size = info.size
            dec.store_mask = (1 << (info.size * 8)) - 1
            dec.store_reader = self.reader(fu, op.srcs[2])
        elif group in DATAFLOW_GROUPS:
            dec.kind = KIND_DATAFLOW
            dec.compute = self._compile_dataflow(fu, op)
        else:
            raise self.fault(
                "opcode %s (%s group) cannot execute on the array"
                % (op.opcode.value, group.value)
            )
        return dec

    def _decode_mem_operands(self, dec: DecodedCgaOp, op: CgaOp) -> None:
        if len(op.srcs) < 2:
            raise self.fault("%s needs base and offset sources" % op.opcode.value)
        base_sel, off_sel = op.srcs[0], op.srcs[1]
        dec.base_reader = self.reader(dec.fu, base_sel)
        if off_sel.kind is SrcKind.IMM and off_sel.init is None:
            # Immediate offsets are pre-scaled at decode time.
            info = memops.mem_info(op.opcode)
            dec.off_reader = None
            dec.off_const = (off_sel.value & MASK64) << info.imm_scale
        else:
            dec.off_reader = self.reader(dec.fu, off_sel)

    def _compile_dataflow(self, fu: int, op: CgaOp) -> Callable[[int], int]:
        handler = handler_for(op.opcode)
        arity = operand_count(op.opcode)
        readers = tuple(self.reader(fu, sel) for sel in op.srcs)
        n = len(readers)
        if arity == 2:
            if n != 2:
                raise self.fault("%s expects 2 sources" % op.opcode.value)
            r0, r1 = readers

            def compute(iteration: int, _h=handler, _r0=r0, _r1=r1) -> int:
                return _h(_r0(iteration), _r1(iteration))

            return compute
        if arity == 1:
            if n not in (1, 2):
                raise self.fault("%s expects 1 source" % op.opcode.value)
        # Rare shapes (unary ops with a spare source, pred_set/pred_clear
        # with any): read every source for its side effects, as the
        # reference interpreter does, then apply the handler.

        def compute_generic(
            iteration: int, _h=handler, _rs=readers, _arity=arity
        ) -> int:
            values = [r(iteration) for r in _rs]
            return _h(*values[:_arity])

        return compute_generic


def decode_kernel(
    kernel: CgaKernel,
    arch: CgaArchitecture,
    cdrf: RegisterFile,
    cprf: PredicateFile,
    local_rfs: Dict[int, LocalRegisterFile],
    out_latch: List[int],
    stats: ActivityStats,
    fault: Type[Exception],
) -> DecodedKernel:
    """Lower *kernel* against one engine's state; raises *fault* on
    structurally illegal configurations (bad routing, port abuse, caps)."""
    decoder = _CgaOpDecoder(arch, cdrf, cprf, local_rfs, out_latch, stats, fault)
    contexts = [
        DecodedContext(
            tuple(decoder.decode_op(fu, ctx.ops[fu]) for fu in sorted(ctx.ops))
        )
        for ctx in kernel.contexts
    ]
    return DecodedKernel(kernel, contexts, decoder.touches_central)


# ----------------------------------------------------------------------
# VLIW bundle decoding
# ----------------------------------------------------------------------


class DecodedInst:
    """One execution-ready VLIW slot instruction."""

    __slots__ = (
        "kind",
        "opcode",
        "group",
        "fu",
        "weight",
        "latency",
        "pred_index",
        "pred_negate",
        "compute",
        "wb_index",
        "wb_is_pred",
        # branches only:
        "target_const",
        "target_reg",
        "link_index",
        # memory operations only:
        "base_reader",
        "off_reader",
        "off_const",
        "mem_size",
        "load_convert",
        "store_reader",
        "store_mask",
        # control only:
        "kernel_id",
    )


class DecodedBundle:
    """One VLIW bundle, lowered: live slots only, scoreboard lists hoisted."""

    __slots__ = ("insts", "need_regs", "need_preds")

    def __init__(
        self,
        insts: Tuple[DecodedInst, ...],
        need_regs: Tuple[int, ...],
        need_preds: Tuple[int, ...],
    ) -> None:
        self.insts = insts
        self.need_regs = need_regs
        self.need_preds = need_preds


class _VliwDecoder:
    """Compiles bundles against one engine's register files."""

    def __init__(
        self,
        cdrf: RegisterFile,
        cprf: PredicateFile,
        slot_fus: List[int],
        fault: Type[Exception],
    ) -> None:
        self.cdrf = cdrf
        self.cprf = cprf
        self.slot_fus = slot_fus
        self.fault = fault

    def reader(self, operand) -> Callable[[], int]:
        if isinstance(operand, Reg):
            rf, index = self.cdrf, operand.index
            return lambda _rf=rf, _index=index: _rf.read(_index)
        if isinstance(operand, PredReg):
            rf, index = self.cprf, operand.index
            return lambda _rf=rf, _index=index: _rf.read(_index)
        if isinstance(operand, Imm):
            const = operand.value & MASK64
            return lambda _const=const: _const
        raise self.fault("bad VLIW operand: %r" % (operand,))

    def decode_bundle(self, pc: int, bundle: VliwBundle) -> DecodedBundle:
        insts: List[DecodedInst] = []
        need_regs: List[int] = []
        need_preds: List[int] = []
        for slot, inst in enumerate(bundle):
            if inst is None or inst.opcode is Opcode.NOP:
                continue
            for operand in inst.srcs:
                if isinstance(operand, Reg) and operand.index not in need_regs:
                    need_regs.append(operand.index)
                elif isinstance(operand, PredReg) and operand.index not in need_preds:
                    need_preds.append(operand.index)
            if inst.pred is not None and isinstance(inst.pred, PredReg):
                if inst.pred.index not in need_preds:
                    need_preds.append(inst.pred.index)
            insts.append(self.decode_inst(pc, slot, inst))
        return DecodedBundle(tuple(insts), tuple(need_regs), tuple(need_preds))

    def decode_inst(self, pc: int, slot: int, inst: Instruction) -> DecodedInst:
        dec = DecodedInst()
        op = inst.opcode
        group = group_of(op)
        dec.opcode = op
        dec.group = group
        dec.fu = self.slot_fus[slot] if slot < len(self.slot_fus) else slot
        dec.weight = op_weight(op)
        dec.latency = latency_of(op)
        dec.pred_index = inst.pred.index if inst.pred is not None else None
        dec.pred_negate = inst.pred_negate
        dec.compute = None
        dec.wb_index, dec.wb_is_pred = self._writeback(inst)
        dec.target_const = 0
        dec.target_reg = None
        dec.link_index = None
        dec.base_reader = None
        dec.off_reader = None
        dec.off_const = 0
        dec.mem_size = 0
        dec.load_convert = None
        dec.store_reader = None
        dec.store_mask = 0
        dec.kernel_id = None
        if group is OpGroup.CONTROL:
            dec.kind = KIND_CONTROL
            if op is Opcode.CGA:
                dec.kernel_id = inst.srcs[0].value if inst.srcs else 0
        elif group is OpGroup.BRANCH:
            dec.kind = KIND_BRANCH
            self._decode_branch(dec, pc, inst)
        elif group is OpGroup.LDMEM:
            dec.kind = KIND_LOAD
            self._decode_mem_operands(dec, inst)
            dec.mem_size, dec.load_convert = _load_converter(op)
        elif group is OpGroup.STMEM:
            dec.kind = KIND_STORE
            base_op, off_op, val_op = inst.srcs
            dec.base_reader = self.reader(base_op)
            if not isinstance(off_op, Imm):
                raise self.fault("stores use immediate offsets (Table 1)")
            info = memops.mem_info(op)
            dec.off_const = off_op.value << info.imm_scale
            dec.mem_size = info.size
            dec.store_mask = (1 << (info.size * 8)) - 1
            dec.store_reader = self.reader(val_op)
        else:
            dec.kind = KIND_DATAFLOW
            dec.compute = self._compile_dataflow(inst)
        return dec

    def _decode_branch(self, dec: DecodedInst, pc: int, inst: Instruction) -> None:
        op = inst.opcode
        if op in (Opcode.JMP, Opcode.JMPL):
            target_src = inst.srcs[0]
            if isinstance(target_src, Imm):
                dec.target_const = target_src.value
            else:
                dec.target_reg = target_src.index
        else:  # br / brl: PC-relative in bundle units
            offset = inst.srcs[0]
            if not isinstance(offset, Imm):
                raise self.fault("relative branch needs an immediate offset")
            dec.target_const = pc + 1 + offset.value
        if op in (Opcode.JMPL, Opcode.BRL):
            link = inst.dst if inst.dst is not None else Reg(9)
            dec.link_index = link.index

    def _decode_mem_operands(self, dec: DecodedInst, inst: Instruction) -> None:
        base_op, off_op = inst.srcs[0], inst.srcs[1]
        dec.base_reader = self.reader(base_op)
        if isinstance(off_op, Imm):
            info = memops.mem_info(inst.opcode)
            dec.off_const = off_op.value << info.imm_scale
        else:
            dec.off_reader = self.reader(off_op)

    def _writeback(self, inst: Instruction) -> Tuple[Optional[int], bool]:
        """Resolve the destination to ``(register index, is-predicate)``.

        The engine applies the write and the scoreboard-ready update
        itself (the ready maps are engine state that decode must not
        capture).
        """
        dst = inst.dst
        if dst is None or group_of(inst.opcode) in (
            OpGroup.CONTROL,
            OpGroup.BRANCH,
            OpGroup.STMEM,
        ):
            return None, False
        if isinstance(dst, Reg):
            return dst.index, False
        if isinstance(dst, PredReg):
            return dst.index, True
        raise self.fault("bad VLIW destination: %r" % (dst,))

    def _compile_dataflow(self, inst: Instruction) -> Callable[[], int]:
        handler = handler_for(inst.opcode)
        arity = operand_count(inst.opcode)
        readers = tuple(self.reader(s) for s in inst.srcs)
        n = len(readers)
        if arity == 2:
            if n != 2:
                raise self.fault("%s expects 2 sources" % inst.opcode.value)
            r0, r1 = readers
            return lambda _h=handler, _r0=r0, _r1=r1: _h(_r0(), _r1())
        if arity == 1 and n not in (1, 2):
            raise self.fault("%s expects 1 source" % inst.opcode.value)

        def compute_generic(_h=handler, _rs=readers, _arity=arity) -> int:
            values = [r() for r in _rs]
            return _h(*values[:_arity])

        return compute_generic


def decode_bundle(
    pc: int,
    bundle: VliwBundle,
    cdrf: RegisterFile,
    cprf: PredicateFile,
    slot_fus: List[int],
    fault: Type[Exception],
) -> DecodedBundle:
    """Lower the bundle at *pc*; raises *fault* on malformed operands."""
    return _VliwDecoder(cdrf, cprf, slot_fus, fault).decode_bundle(pc, bundle)
