"""CGA-mode execution engine: lockstep array driven by configuration contexts.

Execution model (Section 2.B of the paper, standard modulo-scheduled
CGRA semantics):

* the configuration memory streams one context per cycle, cycling
  through the kernel's ``II`` contexts;
* each context names, per active unit, an operation with multiplexer
  selections for its sources and optional register-file write-backs;
* the interconnect is pipelined: a unit reads *latched* outputs produced
  in earlier cycles; an operation of latency L issued at cycle *c*
  becomes visible in its unit's output latch at cycle ``c + L``;
* software-pipeline stages gate execution: the operation at stage *s*
  in global iteration-slot *k* belongs to source iteration ``k - s`` and
  executes only when that iteration is within the trip count — this
  realises prologue and epilogue without separate code;
* loop-carried values enter through *phi* sources (initial immediate on
  iteration 0) and leave through ``last_iteration_only`` central-RF
  writes;
* an L1 bank conflict freezes the whole array for the queuing delay
  (the paper's transparent contention logic), accounted as stall cycles.

Timekeeping uses two clocks: *logical* cycles index contexts and latch
visibility (the datapath freezes during stalls), while *physical* cycles
(logical + accumulated stalls) drive the L1 bank arbiter and the final
cycle count.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.arch.config import CgaArchitecture
from repro.isa.bits import MASK32, MASK64
from repro.isa.opcodes import MAX_OP_LATENCY, OpGroup, group_of, latency_of
from repro.isa.semantics import execute as exec_semantics
from repro.sim import memops
from repro.sim import codegen
from repro.sim.decode import (
    COMMIT_RING_SLOTS,
    KIND_DATAFLOW,
    KIND_LOAD,
    decode_kernel,
)
from repro.sim.memory import Scratchpad
from repro.sim.program import CgaKernel, CgaOp, DstKind, SrcKind, SrcSel
from repro.sim.regfile import LocalRegisterFile, PredicateFile, RegisterFile
from repro.sim.stats import ActivityStats
from repro.trace.events import StallCause
from repro.trace.tracer import NULL_TRACER, Tracer


class CgaFault(Exception):
    """Raised on illegal configurations (bad routing, port abuse, caps)."""


#: Bound on the per-engine decoded/compiled kernel caches.  A long-lived
#: process (a fabric worker) linking many ``patch_constants`` program
#: variants used to pin every kernel it ever ran through the id-keyed
#: decode cache; an LRU this size keeps every live receiver region hot
#: while letting retired variants be collected.
KERNEL_CACHE_BOUND = 16


@dataclass
class _PendingWrite:
    visible_at: int  # logical cycle at which the value can be read
    fu: int
    value: int
    op: CgaOp
    iteration: int


class CgaEngine:
    """Executes modulo-scheduled kernels on the array."""

    def __init__(
        self,
        arch: CgaArchitecture,
        cdrf: RegisterFile,
        cprf: PredicateFile,
        local_rfs: Dict[int, LocalRegisterFile],
        scratchpad: Scratchpad,
        stats: ActivityStats,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.arch = arch
        self.cdrf = cdrf
        self.cprf = cprf
        self.local_rfs = local_rfs
        self.scratchpad = scratchpad
        self.stats = stats
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Output latches.  Decoded source readers capture this exact
        #: list object, so it is reset in place, never rebound.
        self._out_latch: List[int] = [0] * arch.n_units
        #: Decoded-kernel LRU keyed by kernel object identity, bounded by
        #: :data:`KERNEL_CACHE_BOUND`.  Each entry pins its kernel, so a
        #: *live* id can never alias; a recycled id of a collected kernel
        #: is caught by the ``dk.kernel is not kernel`` check and evicted.
        self._decoded: OrderedDict = OrderedDict()
        #: Compiled-runner LRU (tier 3), same keying and bound.  Values
        #: are ``(kernel, fn, imms)``; ``fn is None`` marks a kernel the
        #: generator refused (static port-pressure proof failed) so every
        #: later run falls straight back to the decoded tier.
        self._compiled: OrderedDict = OrderedDict()
        #: When False, :meth:`run` uses the reference interpreter
        #: (:meth:`run_reference`) instead of the decoded fast path.
        self.use_decoded = True
        #: When True (and ``use_decoded``), :meth:`run` prefers the
        #: generated straight-line runner from :mod:`repro.sim.codegen`.
        self.use_compiled = False

    # ------------------------------------------------------------------

    def _read_src(self, fu: int, sel: SrcSel, iteration: int) -> int:
        if sel.init is not None and iteration == 0:
            return sel.init & MASK64
        kind = sel.kind
        if kind is SrcKind.SELF:
            return self._out_latch[fu]
        if kind is SrcKind.WIRE:
            if not self.arch.interconnect.connected(sel.value, fu):
                raise CgaFault(
                    "no wire from FU%d to FU%d in %s"
                    % (sel.value, fu, self.arch.name)
                )
            self.stats.interconnect_transfers += 1
            return self._out_latch[sel.value]
        if kind is SrcKind.LRF:
            if fu not in self.local_rfs:
                raise CgaFault("FU%d has no local register file" % fu)
            return self.local_rfs[fu].read(sel.value)
        if kind is SrcKind.CDRF:
            if not self.arch.fus[fu].has_cdrf_port:
                raise CgaFault("FU%d has no central RF port" % fu)
            return self.cdrf.read(sel.value)
        if kind is SrcKind.CPRF:
            if not self.arch.fus[fu].has_cdrf_port:
                raise CgaFault("FU%d has no central RF port" % fu)
            return self.cprf.read(sel.value)
        if kind is SrcKind.IMM:
            return sel.value & MASK64
        raise CgaFault("unknown source kind %r" % (kind,))

    def _guard_passes(self, fu: int, op: CgaOp, iteration: int) -> bool:
        if op.pred is None:
            return True
        value = self._read_src(fu, op.pred, iteration)
        return bool(value & 1) != op.pred_negate

    def _commit(self, pending: List[_PendingWrite], logical: int, trip: int) -> None:
        """Apply writes whose results become visible at *logical* cycle."""
        remaining: List[_PendingWrite] = []
        for wr in pending:
            if wr.visible_at > logical:
                remaining.append(wr)
                continue
            self._out_latch[wr.fu] = wr.value
            for dst in wr.op.dsts:
                if dst.last_iteration_only and wr.iteration != trip - 1:
                    continue
                if dst.kind is DstKind.LRF:
                    if wr.fu not in self.local_rfs:
                        raise CgaFault("FU%d has no local register file" % wr.fu)
                    self.local_rfs[wr.fu].write(dst.index, wr.value)
                elif dst.kind is DstKind.CDRF:
                    if not self.arch.fus[wr.fu].has_cdrf_port:
                        raise CgaFault("FU%d has no central RF port" % wr.fu)
                    self.cdrf.write(dst.index, wr.value)
                elif dst.kind is DstKind.CPRF:
                    if not self.arch.fus[wr.fu].has_cdrf_port:
                        raise CgaFault("FU%d has no central RF port" % wr.fu)
                    self.cprf.write(dst.index, wr.value & 1)
        pending[:] = remaining

    # ------------------------------------------------------------------

    def run(self, kernel: CgaKernel, start_cycle: int) -> int:
        """Execute *kernel*; returns the physical cycle after completion.

        Dispatches to the selected interpreter tier: the reference
        interpreter, the decoded fast path (default), or the generated
        straight-line runner.  All three are bit-identical in
        architectural state, cycle counts and :class:`ActivityStats`
        (``tests/sim/test_differential.py``).
        """
        if not self.use_decoded:
            return self.run_reference(kernel, start_cycle)
        if self.use_compiled:
            return self.run_compiled(kernel, start_cycle)
        return self.run_decoded(kernel, start_cycle)

    def run_compiled(self, kernel: CgaKernel, start_cycle: int) -> int:
        """Tier-3 path: run the kernel's generated specialized function.

        Falls back to :meth:`run_decoded` (permanently, per kernel) when
        :mod:`repro.sim.codegen` cannot statically prove central-RF port
        safety for this kernel.
        """
        trip = kernel.trip_count
        if trip is None:
            if kernel.trip_count_reg is None:
                raise CgaFault("kernel %s has no trip count" % kernel.name)
            trip = self.cdrf.peek(kernel.trip_count_reg) & MASK32
        if trip <= 0:
            return start_cycle
        kid = id(kernel)
        entry = self._compiled.get(kid)
        if entry is not None and entry[0] is not kernel:
            entry = None  # recycled id of a collected kernel
        if entry is None:
            try:
                fn, imms = codegen.cga_runner(
                    kernel,
                    self.arch,
                    CgaFault,
                    cdrf_ports=(self.cdrf.read_ports, self.cdrf.write_ports),
                    cprf_ports=(self.cprf.read_ports, self.cprf.write_ports),
                )
            except codegen.CodegenUnsupported:
                fn = imms = None
            entry = (kernel, fn, imms)
            self._compiled[kid] = entry
            if len(self._compiled) > KERNEL_CACHE_BOUND:
                self._compiled.popitem(last=False)
        else:
            self._compiled.move_to_end(kid)
        _, fn, imms = entry
        if fn is None:
            return self.run_decoded(kernel, start_cycle)

        stats = self.stats
        local_rfs = self.local_rfs
        cdrf_peek = self.cdrf.peek
        for preload in kernel.preloads:
            if preload.fu not in local_rfs:
                raise CgaFault("preload targets FU%d without a local RF" % preload.fu)
            local_rfs[preload.fu].write(preload.lrf_index, cdrf_peek(preload.cdrf_reg))
            stats.cdrf_reads += 1
        preload_cycles = (len(kernel.preloads) + 1) // 2
        start_cycle += preload_cycles
        out_latch = self._out_latch
        for i in range(len(out_latch)):
            out_latch[i] = 0
        return fn(
            trip,
            start_cycle,
            preload_cycles,
            imms,
            out_latch,
            self.cdrf._regs,
            self.cprf._regs,
            local_rfs,
            stats,
            self.scratchpad.timed_read,
            self.scratchpad.timed_write,
        )

    def run_decoded(self, kernel: CgaKernel, start_cycle: int) -> int:
        """Tier-2 path: the kernel is lowered once by
        :mod:`repro.sim.decode` (LRU-cached by object identity) and the
        per-cycle loop runs over pre-sorted operations with bound
        handlers, pre-resolved source readers and a commit ring instead
        of a linear pending-write scan.
        """
        trip = kernel.trip_count
        if trip is None:
            if kernel.trip_count_reg is None:
                raise CgaFault("kernel %s has no trip count" % kernel.name)
            trip = self.cdrf.peek(kernel.trip_count_reg) & MASK32
        if trip <= 0:
            return start_cycle
        kid = id(kernel)
        dk = self._decoded.get(kid)
        if dk is not None and dk.kernel is not kernel:
            dk = None  # recycled id of a collected kernel
        if dk is None:
            dk = decode_kernel(
                kernel,
                self.arch,
                self.cdrf,
                self.cprf,
                self.local_rfs,
                self._out_latch,
                self.stats,
                CgaFault,
            )
            self._decoded[kid] = dk
            if len(self._decoded) > KERNEL_CACHE_BOUND:
                self._decoded.popitem(last=False)
        else:
            self._decoded.move_to_end(kid)

        stats = self.stats
        local_rfs = self.local_rfs
        cdrf_peek = self.cdrf.peek
        for preload in kernel.preloads:
            if preload.fu not in local_rfs:
                raise CgaFault("preload targets FU%d without a local RF" % preload.fu)
            local_rfs[preload.fu].write(preload.lrf_index, cdrf_peek(preload.cdrf_reg))
            stats.cdrf_reads += 1
        preload_cycles = (len(kernel.preloads) + 1) // 2
        start_cycle += preload_cycles

        ii = kernel.ii
        stages = kernel.stage_count
        total_logical = (trip + stages - 1) * ii
        out_latch = self._out_latch
        for i in range(len(out_latch)):
            out_latch[i] = 0

        ring: List[List[Tuple[int, int, tuple, int]]] = [
            [] for _ in range(COMMIT_RING_SLOTS)
        ]
        n_ring = COMMIT_RING_SLOTS
        in_flight = 0
        stall_offset = 0
        last_iter = trip - 1
        contexts = dk.contexts
        touches_central = dk.touches_central
        cdrf_begin = self.cdrf.begin_cycle
        cprf_begin = self.cprf.begin_cycle
        timed_read = self.scratchpad.timed_read
        timed_write = self.scratchpad.timed_write
        fu_ops = stats.fu_ops
        op_groups = stats.op_groups
        squashed = 0
        pred_weight = 0  # IPC-weighted executed predicated ops
        # Steady-state bounds: between these logical cycles every op of
        # every context is inside the trip window, so the per-op stage
        # gate is skipped.
        steady_lo = dk.max_stage * ii
        steady_hi = (trip + dk.min_stage) * ii
        phase = 0
        iter_slot = 0

        for logical in range(total_logical):
            slot = ring[logical % n_ring]
            if slot:
                for wr_fu, value, dsts, iteration in slot:
                    out_latch[wr_fu] = value
                    for write, last_only in dsts:
                        if last_only and iteration != last_iter:
                            continue
                        write(value)
                in_flight -= len(slot)
                del slot[:]
            ctx = contexts[phase]
            if touches_central:
                cdrf_begin()
                cprf_begin()
            steady = steady_lo <= logical < steady_hi
            if ctx.has_mem:
                physical = start_cycle + logical + stall_offset
                for op in ctx.ops:
                    iteration = iter_slot - op.stage
                    if not steady and not (0 <= iteration <= last_iter):
                        continue  # prologue/epilogue gating
                    pr = op.pred_reader
                    if pr is not None:
                        if ((pr(iteration) & 1) != 0) == op.pred_negate:
                            squashed += 1
                            continue
                        weight = op.weight
                        fu_ops[op.fu] += weight
                        op_groups[op.group] += weight
                        pred_weight += weight
                    kind = op.kind
                    if kind == KIND_DATAFLOW:
                        value = op.compute(iteration)
                    else:
                        base = op.base_reader(iteration) & MASK32
                        off_reader = op.off_reader
                        if off_reader is None:
                            addr = (base + op.off_const) & MASK32
                        else:
                            addr = (base + (off_reader(iteration) & MASK32)) & MASK32
                        if kind == KIND_LOAD:
                            raw, extra = timed_read(physical, addr, op.mem_size)
                            stall_offset += extra
                            value = op.load_convert(raw)
                        else:  # store: no latch write-back
                            value = op.store_reader(iteration) & op.store_mask
                            stall_offset += timed_write(
                                physical, addr, value, op.mem_size
                            )
                            continue
                    ring[(logical + op.latency) % n_ring].append(
                        (op.fu, value, op.dsts, iteration)
                    )
                    in_flight += 1
            else:
                # Steady-state fast path: no memory ops in this context,
                # hence no arbiter calls and no stall possibility.
                for op in ctx.ops:
                    iteration = iter_slot - op.stage
                    if not steady and not (0 <= iteration <= last_iter):
                        continue
                    pr = op.pred_reader
                    if pr is not None:
                        if ((pr(iteration) & 1) != 0) == op.pred_negate:
                            squashed += 1
                            continue
                        weight = op.weight
                        fu_ops[op.fu] += weight
                        op_groups[op.group] += weight
                        pred_weight += weight
                    ring[(logical + op.latency) % n_ring].append(
                        (op.fu, op.compute(iteration), op.dsts, iteration)
                    )
                    in_flight += 1
            phase += 1
            if phase == ii:
                phase = 0
                iter_slot += 1

        # Drain: in-flight results commit during the epilogue window; the
        # ring bounds visibility at MAX_OP_LATENCY cycles past issue.
        drain = 0
        while in_flight:
            drain += 1
            if drain > MAX_OP_LATENCY:
                raise CgaFault(
                    "kernel %s: pending write not visible within %d cycles "
                    "after the last context" % (kernel.name, MAX_OP_LATENCY)
                )
            slot = ring[(total_logical - 1 + drain) % n_ring]
            if slot:
                for wr_fu, value, dsts, iteration in slot:
                    out_latch[wr_fu] = value
                    for write, last_only in dsts:
                        if last_only and iteration != last_iter:
                            continue
                        write(value)
                in_flight -= len(slot)
                del slot[:]

        # Batched accounting: unpredicated ops execute a trip-dependent
        # number of times that decode precomputed symbolically; config
        # words and mode cycles accrue once per logical cycle.
        unpred_weight = 0
        for op_fu, group, weight, stage in dk.unpred_counts:
            n_exec = trip + stages - 1 - stage
            if n_exec > trip:
                n_exec = trip
            if n_exec <= 0:
                continue
            total_w = weight * n_exec
            fu_ops[op_fu] += total_w
            op_groups[group] += total_w
            unpred_weight += total_w
        stats.cga_ops += pred_weight + unpred_weight
        stats.squashed_ops += squashed
        stats.config_words += kernel.context_words * total_logical
        stats.cga_cycles += preload_cycles + total_logical + drain + stall_offset
        stats.add_stall(StallCause.BANK_CONFLICT, stall_offset)
        return start_cycle + total_logical + stall_offset + drain

    # ------------------------------------------------------------------

    def run_reference(self, kernel: CgaKernel, start_cycle: int) -> int:
        """Reference interpreter: the original per-cycle re-decoding loop.

        Kept as the ground truth the decoded fast path is differentially
        tested against; every static fact is re-derived each cycle.
        """
        trip = kernel.trip_count
        if trip is None:
            if kernel.trip_count_reg is None:
                raise CgaFault("kernel %s has no trip count" % kernel.name)
            trip = self.cdrf.peek(kernel.trip_count_reg) & MASK32
        if trip <= 0:
            return start_cycle
        # Preload loop-invariant live-ins into local register files
        # (two per cycle through the shared read ports).
        for preload in kernel.preloads:
            if preload.fu not in self.local_rfs:
                raise CgaFault("preload targets FU%d without a local RF" % preload.fu)
            value = self.cdrf.peek(preload.cdrf_reg)
            self.local_rfs[preload.fu].write(preload.lrf_index, value)
            self.stats.cdrf_reads += 1
        preload_cycles = (len(kernel.preloads) + 1) // 2
        self.stats.cga_cycles += preload_cycles
        start_cycle += preload_cycles
        ii = kernel.ii
        stages = kernel.stage_count
        total_logical = (trip + stages - 1) * ii
        pending: List[_PendingWrite] = []
        stall_offset = 0
        # Reset in place: decoded source readers capture the list object.
        self._out_latch[:] = [0] * self.arch.n_units

        for logical in range(total_logical):
            self._commit(pending, logical, trip)
            context = kernel.contexts[logical % ii]
            iter_slot = logical // ii
            physical = start_cycle + logical + stall_offset
            self.cdrf.begin_cycle()
            self.cprf.begin_cycle()
            self.stats.config_words += kernel.context_words
            for fu in sorted(context.ops):
                op = context.ops[fu]
                iteration = iter_slot - op.stage
                if not (0 <= iteration < trip):
                    continue  # prologue/epilogue gating
                if not self.arch.fus[fu].supports(op.opcode):
                    raise CgaFault(
                        "FU%d cannot execute %s" % (fu, op.opcode.value)
                    )
                if not self._guard_passes(fu, op, iteration):
                    self.stats.squashed_ops += 1
                    continue
                group = group_of(op.opcode)
                self.stats.count_op(fu, op.opcode, in_cga=True)
                if group is OpGroup.LDMEM:
                    value, extra = self._exec_load(fu, op, iteration, physical)
                    stall_offset += extra
                    pending.append(
                        _PendingWrite(
                            logical + latency_of(op.opcode), fu, value, op, iteration
                        )
                    )
                    continue
                if group is OpGroup.STMEM:
                    extra = self._exec_store(fu, op, iteration, physical)
                    stall_offset += extra
                    continue
                srcs = [self._read_src(fu, s, iteration) for s in op.srcs]
                value = exec_semantics(op.opcode, srcs)
                pending.append(
                    _PendingWrite(
                        logical + latency_of(op.opcode), fu, value, op, iteration
                    )
                )
            self.stats.cga_cycles += 1
        # Drain: let in-flight results commit (they finish during the
        # epilogue of real schedules; the scheduler guarantees all
        # central-RF live-outs land within the epilogue window).  No
        # result can be in flight longer than the deepest pipeline, so a
        # longer drain means a malformed pending write, not progress.
        drain = 0
        while pending:
            drain += 1
            if drain > MAX_OP_LATENCY:
                raise CgaFault(
                    "kernel %s: pending write not visible within %d cycles "
                    "after the last context" % (kernel.name, MAX_OP_LATENCY)
                )
            self._commit(pending, total_logical - 1 + drain, trip)
        self.stats.cga_cycles += drain
        # All array freezes come from the transparent L1 contention queue.
        self.stats.add_stall(StallCause.BANK_CONFLICT, stall_offset)
        self.stats.cga_cycles += stall_offset
        return start_cycle + total_logical + stall_offset + drain

    # ------------------------------------------------------------------

    def _mem_operands(self, fu: int, op: CgaOp, iteration: int) -> Tuple[int, int, bool]:
        base_sel, off_sel = op.srcs[0], op.srcs[1]
        base = self._read_src(fu, base_sel, iteration) & MASK32
        off_is_imm = off_sel.kind is SrcKind.IMM and off_sel.init is None
        offset = self._read_src(fu, off_sel, iteration)
        if not off_is_imm:
            offset &= MASK32
        return base, offset, off_is_imm

    def _exec_load(
        self, fu: int, op: CgaOp, iteration: int, physical: int
    ) -> Tuple[int, int]:
        base, offset, off_is_imm = self._mem_operands(fu, op, iteration)
        addr = memops.effective_address(op.opcode, base, offset, off_is_imm)
        info = memops.mem_info(op.opcode)
        raw, extra = self.scratchpad.timed_read(physical, addr, info.size)
        return memops.load_result(op.opcode, raw), extra

    def _exec_store(self, fu: int, op: CgaOp, iteration: int, physical: int) -> int:
        base, offset, off_is_imm = self._mem_operands(fu, op, iteration)
        addr = memops.effective_address(op.opcode, base, offset, off_is_imm)
        value = self._read_src(fu, op.srcs[2], iteration)
        raw, size = memops.store_payload(op.opcode, value)
        return self.scratchpad.timed_write(physical, addr, raw, size)
