"""Cycle-accurate simulator of the hybrid CGA/VLIW processor.

The simulator executes :class:`~repro.sim.program.Program` objects
produced by the compiler (or hand-written in tests).  It models, per
clock cycle:

* VLIW mode: 3-issue in-order execution with scoreboard interlocks,
  predication, branch penalties and I$ miss stalls;
* CGA mode: one configuration context per cycle driving all 16 units in
  lockstep, software-pipeline stage gating, pipelined interconnect
  reads, local/central register file traffic;
* the 4-bank single-ported L1 scratchpad with transparent contention
  queuing (conflicts stall the consumer and are counted);
* a direct-mapped instruction cache with 128-bit lines;
* an AMBA2-style slave bus with DMA used to preload data and
  configuration contexts.

Every architectural event (FU op, RF port access, bank access/conflict,
I$ hit/miss, configuration word fetch, interconnect transfer) is counted
in :class:`~repro.sim.stats.ActivityStats`, the input to the power model.
"""

from repro.sim.stats import ActivityStats, KernelProfile
from repro.sim.regfile import RegisterFile, PredicateFile, LocalRegisterFile
from repro.sim.memory import Scratchpad
from repro.sim.icache import InstructionCache
from repro.sim.bus import AmbaBus, DmaEngine
from repro.sim.program import (
    Program,
    VliwBundle,
    CgaKernel,
    CgaContext,
    CgaOp,
    SrcSel,
    DstSel,
)
from repro.sim.core import Core, SimulationError
from repro.sim.batch import BatchProgramRunner, LaneResult, run_batch

__all__ = [
    "BatchProgramRunner",
    "LaneResult",
    "run_batch",
    "ActivityStats",
    "KernelProfile",
    "RegisterFile",
    "PredicateFile",
    "LocalRegisterFile",
    "Scratchpad",
    "InstructionCache",
    "AmbaBus",
    "DmaEngine",
    "Program",
    "VliwBundle",
    "CgaKernel",
    "CgaContext",
    "CgaOp",
    "SrcSel",
    "DstSel",
    "Core",
    "SimulationError",
]
