"""AMBA2-style slave interface and DMA engine.

The processor is a slave in a multi-core SDR platform: the host loads
input samples into the L1 scratchpad, preloads CGA configuration
contexts through DMA, pokes special registers and collects results —
all over an AHB-compatible port running at half the core clock.

The model is functional with cycle accounting: each 32-bit beat costs
``beat_cycles`` core cycles (2, for the half-speed bus clock), and L1
beats go through the same bank arbiter as core accesses, so host traffic
can visibly steal scratchpad bandwidth (the paper's configurable
core-vs-bus AHB priority is the ``core_priority`` flag).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.sim.memory import Scratchpad
from repro.sim.stats import ActivityStats
from repro.trace.tracer import NULL_TRACER, Tracer


@dataclass
class SpecialRegisters:
    """The control/status register bank visible through the bus.

    Mirrors the paper's level-sensitive control interface: endianness,
    AHB priority, exception signalling, and the stall/resume/sleep
    handshake.
    """

    endianness_big: bool = False
    core_priority: bool = True
    exception: int = 0
    stalled: bool = False
    sleeping: bool = False
    resume_pending: bool = False


class AmbaBus:
    """AHB-compatible slave port into L1, config memory and special registers."""

    #: Core cycles per 32-bit bus beat (bus clock is half the core clock).
    beat_cycles = 2

    def __init__(
        self,
        scratchpad: Scratchpad,
        stats: Optional[ActivityStats] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.scratchpad = scratchpad
        self.special = SpecialRegisters()
        self.stats = stats if stats is not None else ActivityStats()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._cycle = 0

    def advance_to(self, cycle: int) -> None:
        """Synchronise the bus clock with the core clock."""
        self._cycle = max(self._cycle, cycle)

    def read_word(self, addr: int) -> int:
        """Host read of one 32-bit word from L1."""
        self.stats.bus_reads += 1
        value, _delay = self.scratchpad.timed_read(self._cycle, addr, 4)
        self._cycle += self.beat_cycles
        return value

    def write_word(self, addr: int, value: int) -> None:
        """Host write of one 32-bit word into L1."""
        self.stats.bus_writes += 1
        self.scratchpad.timed_write(self._cycle, addr, value, 4)
        self._cycle += self.beat_cycles

    def assert_stall(self) -> None:
        """External stall: freeze the core while keeping state."""
        self.special.stalled = True

    def deassert_stall(self) -> None:
        """Release the external stall."""
        self.special.stalled = False

    def assert_resume(self) -> None:
        """Wake the core from the sleep state entered by ``halt``."""
        self.special.resume_pending = True


class DmaEngine:
    """DMA used to preload configuration memories and bulk data.

    One descriptor moves a block of 32-bit words.  Transfers are
    accounted in ``dma_words`` for the power model and cost
    ``AmbaBus.beat_cycles`` per word on the bus clock.
    """

    def __init__(self, bus: AmbaBus) -> None:
        self.bus = bus

    def write_block(self, addr: int, words: Sequence[int]) -> int:
        """Write *words* starting at byte address *addr*; returns bus cycles."""
        start = self.bus._cycle
        for i, word in enumerate(words):
            self.bus.scratchpad.timed_write(self.bus._cycle, addr + 4 * i, word, 4)
            self.bus._cycle += AmbaBus.beat_cycles
        self.bus.stats.dma_words += len(words)
        if self.bus.tracer.enabled:
            self.bus.tracer.complete(
                "dma.write_block",
                start,
                AmbaBus.beat_cycles * len(words),
                cat="bus",
                args={"addr": addr, "words": len(words)},
            )
        return AmbaBus.beat_cycles * len(words)

    def load_configuration(self, n_contexts: int, words_per_context: int) -> int:
        """Account for preloading *n_contexts* CGA contexts over DMA.

        Configuration memories are not byte-addressable storage in the
        model (contexts are structured objects), so this only accounts
        time and energy: returns the bus cycles consumed.
        """
        words = n_contexts * words_per_context
        start = self.bus._cycle
        self.bus.stats.dma_words += words
        self.bus._cycle += AmbaBus.beat_cycles * words
        if self.bus.tracer.enabled:
            self.bus.tracer.complete(
                "dma.config_load",
                start,
                AmbaBus.beat_cycles * words,
                cat="bus",
                args={"contexts": n_contexts, "words": words},
            )
        return AmbaBus.beat_cycles * words
