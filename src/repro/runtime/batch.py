"""The batch runtime: link each region program once, run many packets.

:class:`ModemRuntime` wraps one :class:`SimReceiver` and pins down the
compile-once contract: the first packet of a given shape links every
region program (hitting the two-level schedule cache for the modulo
schedules); every later same-shape packet reuses the linked programs and
pays only simulation time.  :class:`BatchReceiver` runs a packet list
through one runtime, optionally fanned out over a fork-based worker
pool — forked workers inherit the parent's warm in-memory schedule
cache, so per-worker start-up cost is linking, not scheduling.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import as_completed
from concurrent.futures.process import BrokenProcessPool, ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.arch import CgaArchitecture
from repro.compiler.linker import configure_schedule_cache
from repro.modem.memory_map import DEFAULT_MAP, MemoryMap
from repro.modem.receiver import ReceiverOutput, SimReceiver
from repro.phy.params import PARAMS_20MHZ_2X2, OfdmParams
from repro.sim.stats import ActivityStats


class WorkerCrashError(RuntimeError):
    """A batch worker process died (e.g. was OOM-killed or SIGKILLed).

    The old fork-pool path either hung forever or died opaquely when a
    worker vanished mid-batch; this error instead names the first
    unfinished packet index (and every other pending one) so callers
    can retry or shed precisely.  ``repro.fabric`` goes further and
    requeues transparently.
    """

    def __init__(self, packet_index: int, pending_indices: Sequence[int]) -> None:
        self.packet_index = int(packet_index)
        self.pending_indices = sorted(int(i) for i in pending_indices)
        super().__init__(
            "batch worker process died; packet index %d unfinished "
            "(pending indices: %s)" % (self.packet_index, self.pending_indices)
        )


class ModemRuntime:
    """A resident receiver: compile on first use, re-run thereafter."""

    def __init__(
        self,
        arch: Optional[CgaArchitecture] = None,
        params: OfdmParams = PARAMS_20MHZ_2X2,
        mem: MemoryMap = DEFAULT_MAP,
        seed: int = 0,
        interpreter: str = "decoded",
        cache_dir: Optional[str] = None,
    ) -> None:
        if cache_dir is not None:
            configure_schedule_cache(cache_dir)
        self._kwargs = dict(
            arch=arch, params=params, mem=mem, seed=seed, interpreter=interpreter
        )
        self.receiver = SimReceiver(**self._kwargs)
        #: Packet shapes ``(n_samples, n_symbols)`` this runtime has run
        #: (== shapes whose region programs are linked and resident).
        #: ``repro.fabric`` uses this to seed shape-affinity state for
        #: workers forked from a warm template.
        self.warmed_shapes: set = set()
        #: Cumulative activity across every packet this runtime has run.
        #: Fabric worker heartbeats sample it (``host_cycles``, per-cause
        #: stall attribution) so ``/metrics`` can expose per-worker
        #: simulated progress without waiting for end-of-run reports.
        self.activity = ActivityStats()
        #: Packets run by this runtime instance.
        self.packets_run = 0

    @property
    def compiled_programs(self) -> int:
        """Region programs linked so far (grows only on new shapes)."""
        return self.receiver.compiled_programs

    @property
    def host_cycles(self) -> int:
        """Total simulated cycles across every packet run so far."""
        return int(self.activity.total_cycles)

    @property
    def stall_causes(self) -> Dict[str, int]:
        """Cumulative per-cause stall attribution (cause name -> cycles)."""
        return self.activity.stall_breakdown()

    def run_packet(
        self,
        rx: np.ndarray,
        n_symbols: int = 2,
        detect_hint: Optional[int] = None,
    ) -> ReceiverOutput:
        """Run one packet on the resident programs."""
        rx = np.atleast_2d(rx)
        self.warmed_shapes.add((int(rx.shape[1]), int(n_symbols)))
        out = self.receiver.run_packet(
            rx, n_symbols=n_symbols, detect_hint=detect_hint
        )
        self.activity.merge(out.stats)
        self.packets_run += 1
        return out

    def warm_up(self, rx: np.ndarray, **kwargs) -> ReceiverOutput:
        """Run one representative packet to link that shape's programs."""
        return self.run_packet(rx, **kwargs)


# ----------------------------------------------------------------------
# Worker-pool plumbing.  The runtime lives in a module global so the
# (fork-started) pool processes build it once in the initializer and
# reuse it for every packet they are handed.
# ----------------------------------------------------------------------

_WORKER_RUNTIME: Optional[ModemRuntime] = None


def _worker_init(kwargs: Dict[str, object], cache_dir: Optional[str]) -> None:
    global _WORKER_RUNTIME
    if cache_dir is not None:
        configure_schedule_cache(cache_dir)
    # A fork-started worker inherits the parent's runtime (pre-seeded by
    # BatchReceiver.run_timed): if it was built with the same kwargs its
    # linked region programs are already resident, so keep it instead of
    # re-linking every region from the schedule cache per worker.
    if _WORKER_RUNTIME is not None and _WORKER_RUNTIME._kwargs == kwargs:
        return
    _WORKER_RUNTIME = ModemRuntime(**kwargs)


def _worker_run(task: Tuple[int, np.ndarray, int, Optional[int]]):
    index, rx, n_symbols, detect_hint = task
    assert _WORKER_RUNTIME is not None
    t0 = time.perf_counter()
    out = _WORKER_RUNTIME.run_packet(rx, n_symbols=n_symbols, detect_hint=detect_hint)
    return index, out, time.perf_counter() - t0


class BatchReceiver:
    """Run many packets against once-linked region programs.

    With ``workers <= 1`` packets run serially on one
    :class:`ModemRuntime`.  With more workers a fork-based
    :mod:`multiprocessing` pool is used; results always come back in
    input order and are bit-identical to the serial path (each packet is
    an independent pure function of its samples).
    """

    def __init__(
        self,
        runtime: Optional[ModemRuntime] = None,
        workers: int = 1,
        **runtime_kwargs,
    ) -> None:
        self.runtime = runtime if runtime is not None else ModemRuntime(**runtime_kwargs)
        self.workers = max(1, int(workers))

    def run(
        self,
        packets: Sequence[np.ndarray],
        n_symbols: int = 2,
        detect_hint: Optional[int] = None,
    ) -> List[ReceiverOutput]:
        """Process *packets* (each ``(2, n_samples)`` complex) in order.

        Raises :class:`WorkerCrashError` if a pool worker process dies
        mid-batch (the fork-pool path used to hang forever on a killed
        worker).
        """
        return self.run_timed(packets, n_symbols=n_symbols, detect_hint=detect_hint)[0]

    def run_timed(
        self,
        packets: Sequence[np.ndarray],
        n_symbols: int = 2,
        detect_hint: Optional[int] = None,
    ) -> Tuple[List[ReceiverOutput], List[float]]:
        """Like :meth:`run`, plus per-packet wall seconds (input order).

        The timings are measured around each packet's simulation in
        whichever process ran it, so latency percentiles stay meaningful
        for both the serial and the pool path.
        """
        packets = list(packets)

        def serial():
            outputs, timings = [], []
            for rx in packets:
                t0 = time.perf_counter()
                outputs.append(
                    self.runtime.run_packet(rx, n_symbols=n_symbols, detect_hint=detect_hint)
                )
                timings.append(time.perf_counter() - t0)
            return outputs, timings

        if self.workers == 1 or len(packets) <= 1:
            return serial()
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # platform without fork: stay correct, go serial
            return serial()

        tasks = [(i, rx, n_symbols, detect_hint) for i, rx in enumerate(packets)]
        n_workers = min(self.workers, len(tasks))
        results: List[Optional[ReceiverOutput]] = [None] * len(tasks)
        timings: List[float] = [0.0] * len(tasks)
        # Seed the module global so fork-started workers inherit THIS
        # warm runtime (resident linked programs) rather than paying a
        # fresh link per worker; _worker_init keeps the inherited one
        # when the kwargs match.  Restored afterwards so nested/serial
        # use of this process is unaffected.
        global _WORKER_RUNTIME
        prev_runtime = _WORKER_RUNTIME
        _WORKER_RUNTIME = self.runtime
        try:
            return self._run_pool(ctx, n_workers, tasks, results, timings)
        finally:
            _WORKER_RUNTIME = prev_runtime

    def _run_pool(self, ctx, n_workers, tasks, results, timings):
        from repro.compiler.linker import schedule_cache_dir

        with ProcessPoolExecutor(
            max_workers=n_workers,
            mp_context=ctx,
            initializer=_worker_init,
            initargs=(self.runtime._kwargs, schedule_cache_dir()),
        ) as executor:
            futures = {executor.submit(_worker_run, task): task[0] for task in tasks}
            try:
                for future in as_completed(futures):
                    index, out, dt = future.result()
                    results[index] = out
                    timings[index] = dt
            except BrokenProcessPool:
                # as_completed may not have yielded every finished
                # future before the crash surfaced: harvest the done,
                # successful ones first so pending_indices names only
                # packets that genuinely did not finish.
                pending = []
                for fut, i in futures.items():
                    if not fut.done():
                        pending.append(i)
                        continue
                    try:
                        index, out, dt = fut.result()
                    except Exception:
                        pending.append(i)
                    else:
                        results[index] = out
                        timings[index] = dt
                raise WorkerCrashError(min(pending), pending) from None
        return [out for out in results if out is not None], timings
