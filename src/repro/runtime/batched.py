"""Cross-packet batched execution of the compiled modem pipeline.

:class:`BatchedModemRuntime` is the serving-side surface of the batched
compiled tier: it drives B packets' :meth:`SimReceiver._pipeline`
generators in lockstep, region by region, executing each region's
program across all B lanes with :class:`repro.sim.batch.BatchProgramRunner`
(one Python frame per VLIW segment / CGA window for the whole batch)
instead of once per packet.

What makes this safe:

* Region programs are pure functions of the packet *shape* — packets
  are bucketed by ``(n_samples, n_symbols)`` and only same-shape packets
  share a batch, so every lane requests the same region sequence.
* Packet data reaches the programs through per-lane scratchpad images
  (including the parameter block) and per-lane ``patch_constants``
  immediate pools; the batch functions take both as structure-of-arrays
  arguments, so all lanes share one compile per kernel signature.
* Divergence — differing data-dependent trip counts, per-lane faults —
  is detected by the lockstep runner, which drops the affected lanes to
  the ordinary per-packet compiled engines; any lane that still errors
  is replayed from its pre-region image on the canonical
  :meth:`SimReceiver._run_region` path, reproducing the per-packet
  result or exception bit-identically.

The speed comes from three resident structures, all per region id: the
lane cores (no ``Core`` construction, configuration DMA or allocator
traffic per packet — they are reset in place), the
:class:`BatchProgramRunner` (cached batch functions plus per-lane
signature/immediate pools), and the linked region programs already
cached by :class:`SimReceiver`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.arch import CgaArchitecture
from repro.compiler.builder import PhysReg
from repro.compiler.linker import configure_schedule_cache
from repro.modem.memory_map import DEFAULT_MAP, MemoryMap
from repro.modem.receiver import (
    RegionRequest,
    RegionRun,
    ReceiverOutput,
    SimReceiver,
)
from repro.phy.params import PARAMS_20MHZ_2X2, OfdmParams
from repro.sim import Core
from repro.sim.batch import BatchProgramRunner
from repro.sim.program import Program, patch_constants
from repro.sim.stats import ActivityStats, KernelProfile


@dataclass
class BatchPacketResult:
    """Per-packet outcome of a batched run: exactly one of *output* /
    *error* is set; *fell_back* marks packets that needed any per-packet
    region replay (fault or host-side error)."""

    output: Optional[ReceiverOutput] = None
    error: Optional[BaseException] = None
    fell_back: bool = False


class _RegionLanes:
    """Resident execution state for one region id: lane cores reset in
    place per packet, plus the lockstep runner with its warm caches."""

    __slots__ = ("cores", "runner")

    def __init__(self) -> None:
        self.cores: List[Core] = []
        self.runner = BatchProgramRunner()


class _Lane:
    """One packet's pipeline generator while its batch is in flight."""

    __slots__ = ("index", "gen", "request", "done")

    def __init__(self, index: int, gen) -> None:
        self.index = index
        self.gen = gen
        self.request: Optional[RegionRequest] = None
        self.done = False


class BatchedModemRuntime:
    """A resident receiver running B same-shape packets in lockstep."""

    def __init__(
        self,
        arch: Optional[CgaArchitecture] = None,
        params: OfdmParams = PARAMS_20MHZ_2X2,
        mem: MemoryMap = DEFAULT_MAP,
        seed: int = 0,
        batch: int = 8,
        cache_dir: Optional[str] = None,
    ) -> None:
        if cache_dir is not None:
            configure_schedule_cache(cache_dir)
        self._kwargs = dict(
            arch=arch, params=params, mem=mem, seed=seed, interpreter="compiled"
        )
        self.receiver = SimReceiver(**self._kwargs)
        self.batch = max(1, int(batch))
        self.warmed_shapes: set = set()
        self.activity = ActivityStats()
        self.packets_run = 0
        #: Packets that needed any per-packet replay (divergence/fault).
        self.fallbacks = 0
        self._regions: Dict[tuple, _RegionLanes] = {}

    # -- ModemRuntime-compatible surface --------------------------------

    @property
    def compiled_programs(self) -> int:
        return self.receiver.compiled_programs

    @property
    def host_cycles(self) -> int:
        return int(self.activity.total_cycles)

    @property
    def stall_causes(self) -> Dict[str, int]:
        return self.activity.stall_breakdown()

    def run_packet(
        self,
        rx: np.ndarray,
        n_symbols: int = 2,
        detect_hint: Optional[int] = None,
    ) -> ReceiverOutput:
        """Single-packet convenience: a batch of one."""
        return self.run_batch([rx], n_symbols=n_symbols, detect_hint=detect_hint)[0]

    def warm_up(self, rx: np.ndarray, **kwargs) -> ReceiverOutput:
        return self.run_packet(rx, **kwargs)

    # -- batched entry points -------------------------------------------

    def run_batch(
        self,
        packets: Sequence[np.ndarray],
        n_symbols: int = 2,
        detect_hint: Optional[int] = None,
    ) -> List[ReceiverOutput]:
        """Process *packets* in lockstep batches; raises the first
        per-packet error (after finishing the rest of the batch)."""
        results = self.run_batch_results(
            packets, n_symbols=n_symbols, detect_hint=detect_hint
        )
        for result in results:
            if result.error is not None:
                raise result.error
        return [result.output for result in results]

    def run_batch_results(
        self,
        packets: Sequence[np.ndarray],
        n_symbols: int = 2,
        detect_hint: Optional[int] = None,
    ) -> List[BatchPacketResult]:
        """Like :meth:`run_batch` but never raises: one
        :class:`BatchPacketResult` per input packet, in input order.

        Packets are bucketed by shape ``(n_samples, n_symbols)`` and each
        bucket is cut into chunks of at most :attr:`batch` lanes (the
        final chunk may be ragged); chunk results are bit-identical to
        running each packet alone through the compiled tier.
        """
        packets = [np.atleast_2d(np.asarray(rx)) for rx in packets]
        results = [BatchPacketResult() for _ in packets]
        buckets: Dict[tuple, List[int]] = {}
        for i, rx in enumerate(packets):
            buckets.setdefault((int(rx.shape[1]), int(n_symbols)), []).append(i)
        for shape, indices in buckets.items():
            self.warmed_shapes.add(shape)
            for lo in range(0, len(indices), self.batch):
                chunk = indices[lo : lo + self.batch]
                self._run_chunk(
                    [packets[i] for i in chunk],
                    [results[i] for i in chunk],
                    n_symbols,
                    detect_hint,
                )
        for result in results:
            if result.output is not None:
                self.activity.merge(result.output.stats)
                self.packets_run += 1
            if result.fell_back:
                self.fallbacks += 1
        return results

    # -- lockstep chunk driver ------------------------------------------

    def _run_chunk(
        self,
        packets: List[np.ndarray],
        results: List[BatchPacketResult],
        n_symbols: int,
        detect_hint: Optional[int],
    ) -> None:
        receiver = self.receiver
        lanes = [
            _Lane(i, receiver._pipeline(rx, n_symbols=n_symbols, detect_hint=detect_hint))
            for i, rx in enumerate(packets)
        ]

        def step(lane: _Lane, resp) -> None:
            """Advance one pipeline; record output/error at the end."""
            try:
                lane.request = lane.gen.send(resp)
            except StopIteration as stop:
                lane.done = True
                results[lane.index].output = stop.value
            except Exception as exc:
                lane.done = True
                results[lane.index].error = exc
                results[lane.index].fell_back = True

        for lane in lanes:
            step(lane, None)
        while True:
            live = [lane for lane in lanes if not lane.done]
            if not live:
                return
            groups: Dict[tuple, List[_Lane]] = {}
            for lane in live:
                rid = (lane.request.name,) + tuple(lane.request.key)
                groups.setdefault(rid, []).append(lane)
            # Same-shape packets request identical region sequences, so
            # normally there is exactly one group; anything else is a
            # divergence and runs per-packet.
            for rid, members in groups.items():
                if len(groups) == 1 and len(members) > 1:
                    responses = self._run_region_batch(rid, members, results)
                else:
                    # A single-lane chunk runs per-packet *by design*; only
                    # divergence (several region groups) is a fallback.
                    diverged = len(groups) > 1
                    responses = [
                        self._replay_region(lane, results, count=diverged)
                        for lane in members
                    ]
                for lane, resp in zip(members, responses):
                    if resp is None:
                        continue  # lane errored; already recorded
                    step(lane, resp)

    def _replay_region(
        self, lane: _Lane, results: List[BatchPacketResult], count: bool = True
    ) -> Optional[Tuple[RegionRun, bytearray]]:
        """Canonical per-packet execution of one lane's pending region.

        *count* is False when the per-packet path is taken by design
        (a batch of one) rather than as a divergence/fault fallback.
        """
        req = lane.request
        if count:
            results[lane.index].fell_back = True
        try:
            return self.receiver._run_region(
                req.name, req.image, req.build, key=req.key, patch=req.patch
            )
        except Exception as exc:
            lane.done = True
            results[lane.index].error = exc
            return None

    # -- batched region execution ---------------------------------------

    def _run_region_batch(
        self,
        rid: tuple,
        members: List[_Lane],
        results: List[BatchPacketResult],
    ) -> List[Optional[Tuple[RegionRun, bytearray]]]:
        receiver = self.receiver
        req0 = members[0].request
        program, handles = receiver._region_program(rid, req0.name, req0.build)
        region = self._regions.get(rid)
        if region is None:
            region = self._regions[rid] = _RegionLanes()
        while len(region.cores) < len(members):
            region.cores.append(
                Core(receiver.arch, program, interpreter="compiled")
            )
        cores = region.cores[: len(members)]
        for core, lane in zip(cores, members):
            lane_program = program
            if lane.request.patch:
                lane_program = patch_constants(program, lane.request.patch)
            self._reset_core(core, lane_program, lane.request.image)
        before = [core.stats.snapshot() for core in cores]
        lane_results = region.runner.run(cores)
        responses: List[Optional[Tuple[RegionRun, bytearray]]] = []
        for core, lane, lr, snap in zip(cores, members, lane_results, before):
            if lr.error is not None:
                # Bit-identical fallback: replay this lane's region from
                # its pre-region image on the per-packet path (also
                # reproducing the canonical exception, if any).
                responses.append(self._replay_region(lane, results))
                continue
            delta = core.stats.delta_since(snap).validate()
            outputs = {}
            for out_name, handle in handles.items():
                if isinstance(handle, PhysReg):
                    outputs[out_name] = core.cdrf.peek(handle.index)
            run = RegionRun(req0.name, KernelProfile(req0.name, delta), outputs)
            responses.append((run, bytearray(core.scratchpad._mem)))
        return responses

    @staticmethod
    def _reset_core(core: Core, program: Program, image: bytearray) -> None:
        """Reset a resident core to the exact state a fresh ``Core`` has
        after the per-packet setup (image blit, I$ warm-up) — skipping
        ``load_configuration``, whose accounting the region snapshot
        excludes anyway."""
        core.rebind_program(program)
        core.scratchpad._mem[:] = image
        bank_free = core.scratchpad._bank_next_free
        for bank in range(len(bank_free)):
            bank_free[bank] = 0
        regs = core.cdrf._regs
        regs[:] = [0] * len(regs)
        regs = core.cprf._regs
        regs[:] = [0] * len(regs)
        for lrf in core.local_rfs.values():
            regs = lrf._regs
            regs[:] = [0] * len(regs)
        latch = core.cga._out_latch
        for i in range(len(latch)):
            latch[i] = 0
        core.vliw._reg_ready.clear()
        core.vliw._pred_ready.clear()
        tags = core.icache._tags
        tags[:] = [None] * len(tags)
        core.cycle = 0
        core.pc = 0
        core.halted = False
        core.kernel_log.clear()
        # Warm the I$ exactly as the per-packet path does (ascending pc
        # order determines the direct-mapped tag state).
        fetch = core.icache.fetch
        for pc in range(len(program.bundles)):
            fetch(pc)
