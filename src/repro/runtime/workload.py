"""Reproducible multi-packet workloads for the batch runtime.

Packets are built exactly like the evaluation's reference packet
(:func:`repro.eval.tables.run_reference_modem`): random payload bits,
the reference transmitter, an identity MIMO channel with a carrier
frequency offset, 32 leading noise samples and 64 trailing zeros.  Each
packet gets its own seed so payloads differ while every packet keeps the
same *shape* — the property the compile-once runtime keys on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.phy.channel import MimoChannel
from repro.phy.modem_ref import transmit
from repro.phy.params import PARAMS_20MHZ_2X2, OfdmParams


@dataclass
class PacketCase:
    """One generated packet: the waveform plus its ground truth."""

    seed: int
    cfo_hz: float
    snr_db: Optional[float]
    bits: np.ndarray
    rx: np.ndarray  # (2, n_samples) complex128


def make_packet(
    seed: int,
    cfo_hz: float = 50e3,
    snr_db: Optional[float] = None,
    params: OfdmParams = PARAMS_20MHZ_2X2,
    channel: Optional[MimoChannel] = None,
    extra_pad: int = 0,
) -> PacketCase:
    """Transmit one packet through the reference chain.

    *extra_pad* appends that many additional trailing zero samples after
    the standard 64: the payload is untouched but the packet *shape*
    (sample count) changes, which is how streaming workloads exercise
    per-shape program linking and the ``shape_affinity`` dispatch
    policy.
    """
    if extra_pad < 0:
        raise ValueError("extra_pad must be >= 0, got %d" % extra_pad)
    rng = np.random.default_rng(seed)
    bits = rng.integers(0, 2, size=2 * params.bits_per_symbol)
    tx = transmit(bits, params)
    chan = channel if channel is not None else MimoChannel.identity(2)
    rx = chan.apply(tx.waveform, snr_db=snr_db, cfo_hz=cfo_hz)
    noise = 0.001 * (rng.normal(size=(2, 32)) + 1j * rng.normal(size=(2, 32)))
    rx = np.concatenate([noise, rx, np.zeros((2, 64 + extra_pad))], axis=1)
    return PacketCase(seed=seed, cfo_hz=cfo_hz, snr_db=snr_db, bits=bits, rx=rx)


def generate_packets(
    count: int,
    base_seed: int = 42,
    cfo_hz: float = 50e3,
    snr_db: Optional[float] = None,
    params: OfdmParams = PARAMS_20MHZ_2X2,
) -> List[PacketCase]:
    """*count* same-shape packets with distinct payloads (seed, seed+1, ...)."""
    return [
        make_packet(base_seed + k, cfo_hz=cfo_hz, snr_db=snr_db, params=params)
        for k in range(count)
    ]
