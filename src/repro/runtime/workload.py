"""Reproducible multi-packet workloads for the batch runtime.

Packets are built exactly like the evaluation's reference packet
(:func:`repro.eval.tables.run_reference_modem`): random payload bits,
the reference transmitter, an identity MIMO channel with a carrier
frequency offset, 32 leading noise samples and 64 trailing zeros.  Each
packet gets its own seed so payloads differ while every packet keeps the
same *shape* — the property the compile-once runtime keys on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.phy.channel import MimoChannel
from repro.phy.modem_ref import transmit
from repro.phy.params import PARAMS_20MHZ_2X2, OfdmParams
from repro.phy.scenario import Scenario, apply_scenario, get_scenario


@dataclass
class PacketCase:
    """One generated packet: the waveform plus its ground truth."""

    seed: int
    cfo_hz: float
    snr_db: Optional[float]
    bits: np.ndarray
    rx: np.ndarray  # (2, n_samples) complex128
    #: Preset name when the packet was impaired by a named scenario
    #: (``None`` for the classic identity-channel reference packet).
    scenario: Optional[str] = None


def make_packet(
    seed: int,
    cfo_hz: float = 50e3,
    snr_db: Optional[float] = None,
    params: OfdmParams = PARAMS_20MHZ_2X2,
    channel: Optional[MimoChannel] = None,
    extra_pad: int = 0,
    scenario: "Optional[Scenario | str]" = None,
) -> PacketCase:
    """Transmit one packet through the reference chain.

    *extra_pad* appends that many additional trailing zero samples after
    the standard 64: the payload is untouched but the packet *shape*
    (sample count) changes, which is how streaming workloads exercise
    per-shape program linking and the ``shape_affinity`` dispatch
    policy.

    *scenario* routes the waveform through a named impairment preset
    (:mod:`repro.phy.scenario`) instead of the bare channel: the
    scenario supplies the multipath realisation (re-drawn per packet
    seed — block fading), the carrier offset (fixed part plus seeded
    Doppler jitter; *cfo_hz* is ignored and the drawn value recorded in
    the returned case so receivers and ``build_cfo_rotate`` patching
    see the truth), IQ imbalance and quantisation.  *snr_db* still
    selects the noise level (``None`` keeps the preset's default).
    """
    if extra_pad < 0:
        raise ValueError("extra_pad must be >= 0, got %d" % extra_pad)
    rng = np.random.default_rng(seed)
    bits = rng.integers(0, 2, size=2 * params.bits_per_symbol)
    tx = transmit(bits, params)
    scenario_name = None
    if scenario is not None:
        preset = get_scenario(scenario)
        scenario_name = preset.name
        snr_db = preset.snr_db_default if snr_db is None else snr_db
        cfo_hz = preset.packet_cfo_hz(seed)
        rx = apply_scenario(
            tx.waveform, preset, snr_db=snr_db, seed=seed, params=params
        )
    else:
        chan = channel if channel is not None else MimoChannel.identity(2)
        rx = chan.apply(tx.waveform, snr_db=snr_db, cfo_hz=cfo_hz)
    noise = 0.001 * (rng.normal(size=(2, 32)) + 1j * rng.normal(size=(2, 32)))
    rx = np.concatenate([noise, rx, np.zeros((2, 64 + extra_pad))], axis=1)
    return PacketCase(
        seed=seed,
        cfo_hz=cfo_hz,
        snr_db=snr_db,
        bits=bits,
        rx=rx,
        scenario=scenario_name,
    )


def generate_packets(
    count: int,
    base_seed: int = 42,
    cfo_hz: float = 50e3,
    snr_db: Optional[float] = None,
    params: OfdmParams = PARAMS_20MHZ_2X2,
) -> List[PacketCase]:
    """*count* same-shape packets with distinct payloads (seed, seed+1, ...)."""
    return [
        make_packet(base_seed + k, cfo_hz=cfo_hz, snr_db=snr_db, params=params)
        for k in range(count)
    ]
