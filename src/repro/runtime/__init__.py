"""Compile-once / run-many execution layer over the simulated modem.

The paper's toolflow separates compilation (DRESC modulo scheduling,
linking) from execution: a baseband program is compiled once per
architecture and parameter set, and the control processor then streams
packets through the resident configuration, patching only the
packet-dependent constants.  :class:`ModemRuntime` and
:class:`BatchReceiver` reproduce that split on top of
:class:`repro.modem.receiver.SimReceiver`, whose region programs are
pure functions of (architecture, seed, memory map, OFDM params, packet
shape).
"""

from repro.runtime.batch import BatchReceiver, ModemRuntime, WorkerCrashError
from repro.runtime.batched import BatchedModemRuntime, BatchPacketResult
from repro.runtime.workload import PacketCase, generate_packets, make_packet

__all__ = [
    "BatchPacketResult",
    "BatchReceiver",
    "BatchedModemRuntime",
    "ModemRuntime",
    "PacketCase",
    "WorkerCrashError",
    "generate_packets",
    "make_packet",
]
