"""Client side of the ingest protocol: encode, maim (optionally), send.

:func:`send_stream` turns a sequence of rx arrays into wire datagrams
and pushes them at an :class:`~repro.ingest.server.IngestServer` over
loopback UDP or TCP.  Tests and the example use its seeded *chaos*
knobs — datagram-level reordering, drops and duplication — to exercise
the reassembler's accounting the way a real lossy network would,
reproducibly.  The returned :class:`SendReport` is the sender-side
truth the accounting checks compare against.

Chaos applies to data datagrams only; the end-of-stream markers are
sent last and repeated (they are idempotent), so the receiver can
almost always account trailing losses precisely.
"""

from __future__ import annotations

import os
import socket
import struct
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.ingest.protocol import encode_packet, end_marker

__all__ = ["SendReport", "send_datagrams", "send_stream"]


@dataclass(frozen=True)
class SendReport:
    """What one :func:`send_stream` call actually put on the wire."""

    stream_id: int
    session: int
    n_packets: int  # modem packets encoded
    datagrams: int  # data datagrams produced (pre-chaos, no end markers)
    sent: int  # data datagrams actually sent
    dropped: int  # data datagrams chaos discarded
    duplicated: int  # extra copies chaos injected
    reordered: int  # datagrams displaced from encode order
    dropped_seqs: Tuple[int, ...]  # seqs missing at least one datagram

    @property
    def intact_seqs(self) -> Tuple[int, ...]:
        """Seqs whose every datagram was sent at least once."""
        lost = set(self.dropped_seqs)
        return tuple(s for s in range(self.n_packets) if s not in lost)


def _apply_chaos(
    tagged: List[Tuple[int, bytes]],
    rng: np.random.Generator,
    reorder: float,
    drop: float,
    duplicate: float,
) -> Tuple[List[Tuple[int, bytes]], int, int, int]:
    """Drop/duplicate/displace ``(seq, datagram)`` pairs, seeded."""
    kept: List[Tuple[int, bytes]] = []
    dropped = duplicated = 0
    for item in tagged:
        if drop > 0 and rng.random() < drop:
            dropped += 1
            continue
        kept.append(item)
        if duplicate > 0 and rng.random() < duplicate:
            kept.append(item)
            duplicated += 1
    reordered = 0
    keys = []
    for idx in range(len(kept)):
        key = float(idx)
        if reorder > 0 and rng.random() < reorder:
            # Push the datagram a few slots into the future — the shape
            # of switch-fabric reordering, and enough to cross packet
            # boundaries at typical fragment counts.
            key += float(rng.integers(1, 16)) + 0.5
            reordered += 1
        keys.append(key)
    order = np.argsort(np.asarray(keys), kind="stable")
    shuffled = [kept[i] for i in order]
    return shuffled, dropped, duplicated, reordered


def send_datagrams(
    datagrams: Sequence[bytes],
    udp: Optional[Tuple[str, int]] = None,
    tcp: Optional[Tuple[str, int]] = None,
    pace_every: int = 64,
    pace_s: float = 0.001,
) -> int:
    """Send raw datagrams over one transport; returns how many went out.

    UDP sends each as a datagram; TCP opens one connection and frames
    each as ``<u32 little-endian length><bytes>``.  *pace_every* /
    *pace_s* insert short sleeps so loopback bursts don't outrun the
    receiver's kernel buffer.
    """
    if (udp is None) == (tcp is None):
        raise ValueError("pass exactly one of udp=(host, port) or tcp=(host, port)")
    sent = 0
    if udp is not None:
        sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        try:
            for data in datagrams:
                sock.sendto(data, udp)
                sent += 1
                if pace_every and sent % pace_every == 0:
                    time.sleep(pace_s)
        finally:
            sock.close()
        return sent
    sock = socket.create_connection(tcp, timeout=10)
    try:
        for data in datagrams:
            sock.sendall(struct.pack("<I", len(data)) + data)
            sent += 1
    finally:
        sock.close()
    return sent


def send_stream(
    waveforms: Sequence[np.ndarray],
    udp: Optional[Tuple[str, int]] = None,
    tcp: Optional[Tuple[str, int]] = None,
    stream_id: int = 1,
    session: Optional[int] = None,
    n_symbols: int = 2,
    dtype: "int | str" = "c64",
    max_payload: int = 1408,
    reorder: float = 0.0,
    drop: float = 0.0,
    duplicate: float = 0.0,
    seed: int = 0,
    end_markers: int = 3,
    pace_every: int = 64,
    pace_s: float = 0.001,
) -> SendReport:
    """Encode *waveforms* as one stream and send it, with optional chaos.

    Each waveform is an ``(n_ant, n_samples)`` complex array (1-D is
    treated as one antenna); sequence numbers are assigned in order
    starting at 0.  *session* defaults to a random nonce so a restarted
    sender never collides with its previous epoch.  *reorder*, *drop*
    and *duplicate* are per-datagram probabilities driven by *seed*.
    """
    if session is None:
        session = int.from_bytes(os.urandom(4), "little")
    tagged: List[Tuple[int, bytes]] = []
    seq_frag_counts = {}
    for seq, rx in enumerate(waveforms):
        frames = encode_packet(
            stream_id,
            seq,
            rx,
            n_symbols=n_symbols,
            dtype=dtype,
            session=session,
            max_payload=max_payload,
        )
        seq_frag_counts[seq] = len(frames)
        tagged.extend((seq, frame) for frame in frames)
    n_packets = len(seq_frag_counts)
    rng = np.random.default_rng(seed)
    shuffled, dropped, duplicated, reordered = _apply_chaos(
        tagged, rng, reorder, drop, duplicate
    )
    # Duplicates can mask a same-seq drop; count *distinct* frames sent.
    distinct: dict = {}
    for seq, frame in shuffled:
        distinct.setdefault(seq, set()).add(frame)
    dropped_seqs = tuple(
        seq
        for seq in sorted(seq_frag_counts)
        if len(distinct.get(seq, ())) < seq_frag_counts[seq]
    )
    wire = [frame for _, frame in shuffled]
    wire.extend(end_marker(stream_id, n_packets, session) for _ in range(end_markers))
    sent = send_datagrams(
        wire, udp=udp, tcp=tcp, pace_every=pace_every, pace_s=pace_s
    )
    return SendReport(
        stream_id=stream_id,
        session=session,
        n_packets=n_packets,
        datagrams=len(tagged),
        sent=sent - end_markers,
        dropped=dropped,
        duplicated=duplicated,
        reordered=reordered,
        dropped_seqs=dropped_seqs,
    )
