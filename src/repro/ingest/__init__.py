"""`repro.ingest` — networked packetized-IQ ingest feeding the fabric.

The serving front door: external clients push IQ sample streams at a
listener over UDP datagrams or length-prefixed TCP frames, and complete
modem packets come out the other side as :class:`~repro.fabric.Fabric`
submissions — in per-stream sequence order, each exactly once, with
every loss accounted.  Layers, bottom up:

- :mod:`repro.ingest.protocol` — the wire format: a fixed 36-byte
  little-endian header (magic / version / stream id / session / seq /
  shape / fragmentation) over Q15, complex64 or complex128 payload.
- :mod:`repro.ingest.reassembly` — per-stream fragment reassembly and
  bounded-window reordering, declaring gaps/duplicates/corruption into
  a strict counter taxonomy.
- :mod:`repro.ingest.server` — :class:`IngestServer`: the socket
  listener thread, staging buffers, fabric submission with typed
  backpressure shedding, and the observability surface
  (``fabric.report()["ingest"]``, ``repro_ingest_*`` Prometheus
  families, the ``ingest:listener`` health check).
- :mod:`repro.ingest.client` — :func:`send_stream`: the encoder the
  tests, benchmarks and example use to drive it over loopback, with
  seeded reorder/drop/duplicate chaos injection.

Wire-format specification: DESIGN.md §5.14.
"""

from repro.ingest.client import SendReport, send_datagrams, send_stream
from repro.ingest.protocol import (
    DTYPES,
    FLAG_END,
    HEADER_SIZE,
    MAGIC,
    MAX_PACKET_NBYTES,
    VERSION,
    BadMagic,
    CorruptHeader,
    Header,
    ProtocolError,
    TruncatedDatagram,
    VersionMismatch,
    decode_payload,
    encode_packet,
    encode_payload,
    end_marker,
    iq_roundtrip,
    parse_datagram,
    payload_nbytes,
)
from repro.ingest.reassembly import (
    LISTENER_COUNTERS,
    STREAM_COUNTERS,
    ReassembledPacket,
    Reassembler,
)
from repro.ingest.server import SHED_COUNTERS, IngestError, IngestServer

__all__ = [
    "BadMagic",
    "CorruptHeader",
    "DTYPES",
    "FLAG_END",
    "HEADER_SIZE",
    "Header",
    "IngestError",
    "IngestServer",
    "LISTENER_COUNTERS",
    "MAGIC",
    "MAX_PACKET_NBYTES",
    "ProtocolError",
    "ReassembledPacket",
    "Reassembler",
    "SHED_COUNTERS",
    "STREAM_COUNTERS",
    "SendReport",
    "TruncatedDatagram",
    "VERSION",
    "VersionMismatch",
    "decode_payload",
    "encode_packet",
    "encode_payload",
    "end_marker",
    "iq_roundtrip",
    "parse_datagram",
    "payload_nbytes",
    "send_datagrams",
    "send_stream",
]
