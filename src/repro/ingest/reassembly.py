"""Per-stream datagram reassembly with bounded reordering and accounting.

The network hands the listener an unordered, lossy, possibly duplicated
datagram soup; the fabric wants *whole modem packets, in per-stream
sequence order, each exactly once*.  :class:`Reassembler` is the
translation:

- fragments are collected per ``(stream_id, seq)`` until a packet's
  ``frag_count`` chunks are all present, then the payload is decoded
  into a complex128 rx array;
- completed packets are *released in sequence order*.  A missing
  sequence number holds later completions back, but only within a
  bounded ``window``: once ``max_seen - next_seq`` would exceed it, the
  hole is declared lost — never-seen sequences count as ``gaps``,
  partially received ones as ``incomplete`` — and the stream moves on.
  A bounded window is what makes memory and latency finite under loss;
- a datagram whose ``session`` differs from the stream's current one
  resets that stream's state (counted in ``resets``).  This is how a
  restarted sender reusing a stream id — or two senders colliding on
  one — is handled: sequence numbering restarts cleanly instead of the
  new traffic drowning as "stale duplicates" of the old epoch;
- every datagram lands in exactly one counter.  Malformed traffic that
  cannot be attributed to a stream (bad magic, truncation, wrong
  version, corrupt fields) is accounted on the listener level.  A
  sequence written off as ``corrupt`` is tombstoned so the later window
  advance never recounts it as a gap, and a stream evicted under
  stream-id churn has its settled lifetime counters folded into the
  aggregate ``evicted`` bucket instead of being lost.

The class is single-threaded on purpose (the listener serialises calls
with its own lock); it does no I/O and no fabric calls, so every edge
case is unit-testable with bytes in, packets out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.ingest.protocol import (
    BadMagic,
    CorruptHeader,
    Header,
    ProtocolError,
    TruncatedDatagram,
    VersionMismatch,
    decode_payload,
    parse_datagram,
)

__all__ = ["ReassembledPacket", "Reassembler", "STREAM_COUNTERS"]

#: Per-stream counter names, in render order.  ``received`` counts
#: datagrams, ``bytes`` their payload bytes; the rest count packets
#: except ``out_of_order``/``duplicates``/``stale`` (datagrams) and
#: ``resets`` (session changes).
STREAM_COUNTERS = (
    "received",
    "bytes",
    "reassembled",
    "released",
    "out_of_order",
    "duplicates",
    "stale",
    "gaps",
    "incomplete",
    "corrupt",
    "resets",
)

#: Listener-level counters for traffic no stream can own.
LISTENER_COUNTERS = ("bad_magic", "truncated", "version_mismatch", "corrupt_header")


@dataclass
class ReassembledPacket:
    """One complete modem packet, decoded and ready for the fabric."""

    stream_id: int
    session: int
    seq: int
    rx: np.ndarray  # (n_ant, n_samples) complex128
    n_symbols: int
    dtype: str


@dataclass
class _Partial:
    """Fragments collected so far for one (stream, seq)."""

    header: Header  # header of the first fragment seen
    chunks: Dict[int, bytes] = field(default_factory=dict)
    nbytes: int = 0
    chunk_len: Optional[int] = None  # uniform non-last fragment size


class _Stream:
    """Reassembly state for one stream id."""

    def __init__(self, session: int) -> None:
        self.session = session
        self.next_seq = 0
        self.max_seen = -1
        self.end_seq: Optional[int] = None
        self.pending: Dict[int, _Partial] = {}
        self.ready: Dict[int, ReassembledPacket] = {}
        #: Sequences already written off as ``corrupt``: tombstones keep
        #: the window advance from recounting them as gaps, and late
        #: fragments for them from resurrecting a _Partial.  A seq is in
        #: at most one of pending/ready/corrupt_seqs at any time.
        self.corrupt_seqs: Set[int] = set()
        self.last_key: Optional[Tuple[int, int]] = None  # (seq, frag) arrival order
        self.counters = {name: 0 for name in STREAM_COUNTERS}


class Reassembler:
    """Turn a datagram soup into in-order, exactly-once modem packets.

    *window* bounds per-stream reordering: completed packets are held
    back for at most ``window - 1`` later sequence numbers before the
    hole in front of them is declared lost.  *max_streams* bounds state
    under stream-id churn.  The sender's fragmentation chunk size is
    learned per packet from the wire (uniform chunking is enforced, the
    exact size is not assumed), so senders with different MTUs coexist.
    """

    def __init__(self, window: int = 64, max_streams: int = 256) -> None:
        if window < 1:
            raise ValueError("window must be >= 1, got %d" % window)
        if max_streams < 1:
            raise ValueError("max_streams must be >= 1, got %d" % max_streams)
        self.window = int(window)
        self.max_streams = int(max_streams)
        self._streams: Dict[int, _Stream] = {}
        self.listener = {name: 0 for name in LISTENER_COUNTERS}
        #: Lifetime counters of streams evicted under stream-id churn,
        #: folded into one aggregate so their accounting is never lost;
        #: ``streams`` counts the evictions themselves.
        self.evicted = {name: 0 for name in STREAM_COUNTERS}
        self.evicted["streams"] = 0

    # ------------------------------------------------------------------
    # Intake.
    # ------------------------------------------------------------------

    def offer(self, data: bytes) -> List[ReassembledPacket]:
        """Feed one datagram; returns packets released *in seq order*."""
        try:
            header, payload = parse_datagram(data)
        except BadMagic:
            self.listener["bad_magic"] += 1
            return []
        except TruncatedDatagram:
            self.listener["truncated"] += 1
            return []
        except VersionMismatch:
            self.listener["version_mismatch"] += 1
            return []
        except (CorruptHeader, ProtocolError):
            self.listener["corrupt_header"] += 1
            return []
        stream = self._stream_for(header)
        if header.is_end:
            # Idempotent: the largest count wins if markers disagree.
            if stream.end_seq is None or header.seq > stream.end_seq:
                stream.end_seq = header.seq
            return self._release(stream)
        counters = stream.counters
        counters["received"] += 1
        counters["bytes"] += len(payload)
        key = (header.seq, header.frag_index)
        if stream.last_key is not None and key < stream.last_key:
            counters["out_of_order"] += 1
        stream.last_key = max(key, stream.last_key or key)
        if header.seq < stream.next_seq:
            # Already released, or already declared lost: late either way.
            counters["stale"] += 1
            return []
        self._add_fragment(stream, header, payload)
        stream.max_seen = max(stream.max_seen, header.seq)
        return self._release(stream)

    def _stream_for(self, header: Header) -> _Stream:
        stream = self._streams.get(header.stream_id)
        if stream is None:
            if len(self._streams) >= self.max_streams:
                # Evict the stream with the least outstanding state.
                victim = min(
                    self._streams,
                    key=lambda sid: len(self._streams[sid].pending)
                    + len(self._streams[sid].ready),
                )
                self._evict(victim)
            stream = _Stream(header.session)
            self._streams[header.stream_id] = stream
        elif stream.session != header.session:
            # A restarted sender (or a colliding one) on a known stream
            # id: write off the old epoch's outstanding state (those
            # packets can never complete now), keep lifetime counters.
            self._settle(stream)
            fresh = _Stream(header.session)
            fresh.counters = stream.counters
            fresh.counters["resets"] += 1
            stream = fresh
            self._streams[header.stream_id] = stream
        return stream

    def _settle(self, stream: _Stream) -> None:
        """Write off everything a stream still owes, without releasing.

        Buffered packets — reassembled-but-unreleased and partial alike
        — count ``incomplete`` (seen but never delivered), never-seen
        holes up to ``max_seen``/the end marker count ``gaps``, corrupt
        tombstones were already counted.  Keeps the exactly-once ledger
        conserved when a stream's state is torn down mid-flight.
        """
        limit = stream.max_seen + 1
        if stream.end_seq is not None:
            limit = max(limit, stream.end_seq)
        if limit <= stream.next_seq:
            return
        buffered = len(stream.ready) + len(stream.pending)
        stream.counters["incomplete"] += buffered
        stream.counters["gaps"] += (
            limit - stream.next_seq - buffered - len(stream.corrupt_seqs)
        )
        stream.ready.clear()
        stream.pending.clear()
        stream.corrupt_seqs.clear()
        stream.next_seq = limit

    def _evict(self, stream_id: int) -> None:
        """Drop a stream, folding its settled counters into ``evicted``."""
        victim = self._streams.pop(stream_id)
        self._settle(victim)
        for name, value in victim.counters.items():
            self.evicted[name] += value
        self.evicted["streams"] += 1

    def _poison(self, stream: _Stream, seq: int) -> None:
        """Write one seq off as corrupt, exactly once, and tombstone it."""
        stream.counters["corrupt"] += 1
        stream.pending.pop(seq, None)
        stream.corrupt_seqs.add(seq)

    def _add_fragment(self, stream: _Stream, header: Header, payload: bytes) -> None:
        counters = stream.counters
        if header.seq in stream.ready:
            counters["duplicates"] += 1
            return
        if header.seq in stream.corrupt_seqs:
            # Already written off as corrupt: late traffic for a settled
            # sequence, and it must not resurrect a _Partial (that would
            # count the seq a second time, as incomplete).
            counters["stale"] += 1
            return
        partial = stream.pending.get(header.seq)
        if partial is None:
            partial = stream.pending[header.seq] = _Partial(header)
        ref = partial.header
        if (
            header.frag_count != ref.frag_count
            or header.n_samples != ref.n_samples
            or header.n_ant != ref.n_ant
            or header.dtype != ref.dtype
        ):
            # Same (stream, session, seq) with a different geometry:
            # someone is lying; drop the whole packet once.
            self._poison(stream, header.seq)
            return
        if header.frag_index in partial.chunks:
            counters["duplicates"] += 1
            return
        # Uniform fragmentation: a single-fragment packet carries the
        # whole payload, and every non-last fragment shares one chunk
        # size (learned from the first one seen — the sender's MTU is
        # not assumed).  Each fragment's length is checked against the
        # claimed packet size *before* it is buffered, so a lying
        # frag_count/n_samples cannot make the receiver hoard bytes:
        # frag_count chunks of chunk_len (last short, non-empty) must
        # tile packet_nbytes, which parse_datagram already capped.
        last = ref.frag_count - 1
        if ref.frag_count == 1:
            if len(payload) != ref.packet_nbytes:
                self._poison(stream, header.seq)
                return
        elif header.frag_index < last:
            if partial.chunk_len is None:
                partial.chunk_len = len(payload)
            chunk_len = partial.chunk_len
            if (
                len(payload) != chunk_len
                or chunk_len == 0
                or chunk_len * last >= ref.packet_nbytes
                or chunk_len * ref.frag_count < ref.packet_nbytes
            ):
                self._poison(stream, header.seq)
                return
        else:  # the last, possibly short, fragment
            if partial.chunk_len is not None:
                if len(payload) != ref.packet_nbytes - partial.chunk_len * last:
                    self._poison(stream, header.seq)
                    return
            # chunk_len unknown (last fragment arrived first): the last
            # chunk can never exceed ceil(packet_nbytes / frag_count).
            elif not 0 < len(payload) <= -(-ref.packet_nbytes // ref.frag_count):
                self._poison(stream, header.seq)
                return
        partial.chunks[header.frag_index] = payload
        partial.nbytes += len(payload)
        if len(partial.chunks) < ref.frag_count:
            return
        # Complete: decode (ruling out total-size lies) and stage.
        del stream.pending[header.seq]
        blob = b"".join(partial.chunks[i] for i in range(ref.frag_count))
        try:
            rx = decode_payload(blob, ref.dtype, ref.n_ant, ref.n_samples)
        except ProtocolError:
            counters["corrupt"] += 1
            stream.corrupt_seqs.add(header.seq)
            return
        counters["reassembled"] += 1
        stream.ready[header.seq] = ReassembledPacket(
            header.stream_id, header.session, header.seq, rx,
            ref.n_symbols, ref.dtype_name,
        )

    # ------------------------------------------------------------------
    # In-order release and loss declaration.
    # ------------------------------------------------------------------

    def _advance(self, stream: _Stream, floor: int) -> List[ReassembledPacket]:
        """Release everything below *floor*, declaring holes lost.

        All counts are computed arithmetically over the (window-bounded)
        buffered state — never by iterating sequence numbers — so a
        forged far-future ``seq`` (a u32 straight off the wire) jumps
        the window in O(window), not O(2^32): the listener cannot be
        spun by a single datagram.
        """
        if floor <= stream.next_seq:
            return []
        counters = stream.counters
        released = sorted(seq for seq in stream.ready if seq < floor)
        out = [stream.ready.pop(seq) for seq in released]
        counters["released"] += len(out)
        incomplete = [seq for seq in stream.pending if seq < floor]
        for seq in incomplete:
            del stream.pending[seq]
        counters["incomplete"] += len(incomplete)
        tombstones = [seq for seq in stream.corrupt_seqs if seq < floor]
        stream.corrupt_seqs.difference_update(tombstones)
        # Every skipped seq lands in exactly one bucket: released,
        # incomplete, corrupt (counted when poisoned) — or, by
        # subtraction, a never-seen gap.
        counters["gaps"] += (
            floor - stream.next_seq - len(out) - len(incomplete) - len(tombstones)
        )
        stream.next_seq = floor
        return out

    def _release(self, stream: _Stream) -> List[ReassembledPacket]:
        out: List[ReassembledPacket] = []
        while True:
            if stream.next_seq in stream.corrupt_seqs:
                # A poisoned packet never blocks the line: skip it (it
                # was counted corrupt when poisoned) and keep releasing.
                stream.corrupt_seqs.discard(stream.next_seq)
                stream.next_seq += 1
                continue
            packet = stream.ready.pop(stream.next_seq, None)
            if packet is None:
                break
            stream.counters["released"] += 1
            out.append(packet)
            stream.next_seq += 1
        # Bounded reordering: a hole may hold the line back by at most
        # window-1 newer sequences before it is written off.
        floor = stream.max_seen - self.window + 1
        if floor > stream.next_seq:
            out.extend(self._advance(stream, floor))
            out.extend(self._release(stream))
        return out

    def flush(self) -> List[ReassembledPacket]:
        """Release everything still buffered, declaring trailing losses.

        Uses each stream's end-of-stream marker when one arrived (so
        packets lost *after* the last delivered one are still counted as
        gaps); otherwise accounts up to the highest sequence seen.
        """
        out: List[ReassembledPacket] = []
        for stream in self._streams.values():
            limit = stream.max_seen + 1
            if stream.end_seq is not None:
                limit = max(limit, stream.end_seq)
            out.extend(self._advance(stream, limit))
        return out

    # ------------------------------------------------------------------
    # Accounting views.
    # ------------------------------------------------------------------

    def stream_ids(self) -> List[int]:
        return sorted(self._streams)

    def outstanding(self, stream_id: int) -> int:
        """Packets buffered (pending fragments + ready) for one stream."""
        stream = self._streams.get(stream_id)
        if stream is None:
            return 0
        return len(stream.pending) + len(stream.ready)

    def stats(self) -> Dict[str, dict]:
        """Counter snapshot:
        ``{"listener": {...}, "streams": {id: {...}}, "evicted": {...}}``."""
        streams = {}
        for stream_id, stream in sorted(self._streams.items()):
            view = dict(stream.counters)
            view["pending"] = len(stream.pending)
            view["ready"] = len(stream.ready)
            view["next_seq"] = stream.next_seq
            view["session"] = stream.session
            streams[str(stream_id)] = view
        return {
            "listener": dict(self.listener),
            "streams": streams,
            "evicted": dict(self.evicted),
        }
