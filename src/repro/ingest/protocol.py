"""The packetized-IQ wire format: one header, three payload codecs.

A modem packet travels as one or more *datagrams* (UDP payloads, or
length-prefixed TCP frames carrying the identical bytes).  Every
datagram opens with a fixed 36-byte little-endian header:

======  ====  ==========  =================================================
offset  size  field       meaning
======  ====  ==========  =================================================
0       4     magic       ``0x51493135`` — rejects non-protocol traffic
4       2     version     wire-format revision (this module: ``1``)
6       1     dtype       payload codec: 1=Q15, 2=complex64, 3=complex128
7       1     n_ant       antennas (rows of the rx array), 1..8
8       4     stream_id   the logical IQ stream this packet belongs to
12      4     session     per-sender nonce; a change resets the stream
16      4     seq         packet sequence number within the stream
20      4     n_samples   samples per antenna in the *whole* packet
24      2     n_symbols   decode parameter forwarded to the modem
26      2     frag_index  which fragment of the packet this datagram is
28      2     frag_count  fragments the packet was split into (0 = control)
30      2     flags       bit 0: end-of-stream marker (``seq`` = count)
32      4     payload_len payload bytes following the header
======  ====  ==========  =================================================

Payload codecs (per complex sample): **Q15** — interleaved int16
``(I, Q)`` pairs via :func:`repro.phy.fixed.q15` (4 bytes, the ADC-true
transport the paper's front-end would produce); **complex64** (8
bytes); **complex128** (16 bytes, bit-exact transport of the
reference-channel waveforms).  Antennas are concatenated row-major, so
fragment boundaries never need to align with antenna rows.

Fragmentation is uniform: a packet's payload is split into
``frag_count`` chunks of one fixed size (last chunk short), so joining
the chunks in ``frag_index`` order reconstructs the payload — no
per-fragment offset field, and arbitrary fragment reordering is
tolerated.  The chunk size itself is *not* part of the protocol: the
receiver learns it per packet from the first non-last fragment seen
(and enforces uniformity), so senders with different MTUs coexist on
one listener.

The parser raises typed :class:`ProtocolError` subclasses so the
reassembler can account malformed traffic per cause without string
matching.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.phy.fixed import from_q15, q15

__all__ = [
    "DTYPES",
    "FLAG_END",
    "HEADER_SIZE",
    "Header",
    "MAGIC",
    "MAX_PACKET_NBYTES",
    "ProtocolError",
    "BadMagic",
    "CorruptHeader",
    "TruncatedDatagram",
    "VersionMismatch",
    "VERSION",
    "decode_payload",
    "encode_packet",
    "encode_payload",
    "end_marker",
    "fragment_extent",
    "iq_roundtrip",
    "parse_datagram",
    "payload_nbytes",
]

#: First four wire bytes of every datagram (little-endian ``"51IQ"``).
MAGIC = 0x51493135

#: Wire-format revision this module speaks.
VERSION = 1

#: Header layout (little-endian, 36 bytes) — see the module docstring.
_HEADER_FMT = "<IHBBIIIIHHHHI"
HEADER_SIZE = struct.calcsize(_HEADER_FMT)

#: Payload codec ids and their bytes per complex sample.
DTYPES = {"q15": 1, "c64": 2, "c128": 3}
_DTYPE_NAMES = {v: k for k, v in DTYPES.items()}
_ITEMSIZE = {1: 4, 2: 8, 3: 16}

#: Flags bit 0: end-of-stream control datagram (``seq`` = packet count).
FLAG_END = 0x0001

#: Hard bound on one packet's payload (64 MiB).  ``n_samples`` is a
#: u32, so without a cap a single forged header could promise a
#: ~512 GiB packet and the receiver would buffer fragments toward it;
#: with the cap, any datagram claiming more is rejected at parse time
#: before a byte is buffered.  Enforced symmetrically by the encoder.
MAX_PACKET_NBYTES = 1 << 26

_MAX_ANTENNAS = 8


class ProtocolError(ValueError):
    """Base class for wire-format violations (typed, per cause)."""


class TruncatedDatagram(ProtocolError):
    """Datagram shorter than its header claims (or than the header)."""


class BadMagic(ProtocolError):
    """The first four bytes are not the protocol magic."""


class VersionMismatch(ProtocolError):
    """A well-framed datagram from an incompatible protocol revision."""

    def __init__(self, got: int, want: int = VERSION) -> None:
        super().__init__("wire version %d, this receiver speaks %d" % (got, want))
        self.got = got
        self.want = want


class CorruptHeader(ProtocolError):
    """Magic and version parse but a header field is inconsistent."""


@dataclass(frozen=True)
class Header:
    """One parsed datagram header (all fields host-order ints)."""

    dtype: int
    n_ant: int
    stream_id: int
    session: int
    seq: int
    n_samples: int
    n_symbols: int
    frag_index: int
    frag_count: int
    flags: int
    payload_len: int

    @property
    def is_end(self) -> bool:
        """True for the end-of-stream control datagram."""
        return bool(self.flags & FLAG_END)

    @property
    def dtype_name(self) -> str:
        return _DTYPE_NAMES[self.dtype]

    @property
    def packet_nbytes(self) -> int:
        """Total payload bytes of the whole (unfragmented) packet."""
        return self.n_ant * self.n_samples * _ITEMSIZE[self.dtype]


def _dtype_code(dtype: "int | str") -> int:
    if isinstance(dtype, str):
        if dtype not in DTYPES:
            raise ValueError(
                "unknown payload dtype %r; expected one of %s" % (dtype, sorted(DTYPES))
            )
        return DTYPES[dtype]
    if dtype not in _DTYPE_NAMES:
        raise ValueError("unknown payload dtype code %r" % (dtype,))
    return int(dtype)


def payload_nbytes(dtype: "int | str", n_ant: int, n_samples: int) -> int:
    """Encoded payload size of one whole packet, in bytes."""
    return int(n_ant) * int(n_samples) * _ITEMSIZE[_dtype_code(dtype)]


# ----------------------------------------------------------------------
# Payload codecs.
# ----------------------------------------------------------------------


def encode_payload(rx: np.ndarray, dtype: "int | str" = "c64") -> bytes:
    """Encode an ``(n_ant, n_samples)`` complex array for the wire."""
    code = _dtype_code(dtype)
    rx = np.ascontiguousarray(np.atleast_2d(rx))
    if code == DTYPES["q15"]:
        pairs = np.empty(rx.shape + (2,), dtype=np.int16)
        pairs[..., 0] = q15(rx.real)
        pairs[..., 1] = q15(rx.imag)
        return pairs.tobytes()
    if code == DTYPES["c64"]:
        return rx.astype(np.complex64).tobytes()
    return rx.astype(np.complex128).tobytes()


def decode_payload(
    data: bytes, dtype: "int | str", n_ant: int, n_samples: int
) -> np.ndarray:
    """Decode wire bytes back to an ``(n_ant, n_samples)`` complex128 array."""
    code = _dtype_code(dtype)
    expected = payload_nbytes(code, n_ant, n_samples)
    if len(data) != expected:
        raise CorruptHeader(
            "payload is %d bytes, dtype/shape say %d" % (len(data), expected)
        )
    if code == DTYPES["q15"]:
        pairs = np.frombuffer(data, dtype=np.int16).reshape(n_ant, n_samples, 2)
        return from_q15(pairs[..., 0]) + 1j * from_q15(pairs[..., 1])
    if code == DTYPES["c64"]:
        flat = np.frombuffer(data, dtype=np.complex64)
    else:
        flat = np.frombuffer(data, dtype=np.complex128)
    return flat.reshape(n_ant, n_samples).astype(np.complex128)


def iq_roundtrip(rx: np.ndarray, dtype: "int | str" = "c64") -> np.ndarray:
    """What a receiver sees after one encode/decode round trip.

    This *defines* the delivered payload for lossy codecs: a loopback
    ingest run is bit-identical to an in-process baseline fed
    ``iq_roundtrip(rx, dtype)``.  For ``c128`` the round trip is exact.
    """
    rx = np.atleast_2d(rx)
    return decode_payload(
        encode_payload(rx, dtype), dtype, int(rx.shape[0]), int(rx.shape[1])
    )


# ----------------------------------------------------------------------
# Datagram building.
# ----------------------------------------------------------------------


def _pack(
    dtype: int,
    n_ant: int,
    stream_id: int,
    session: int,
    seq: int,
    n_samples: int,
    n_symbols: int,
    frag_index: int,
    frag_count: int,
    flags: int,
    payload: bytes,
) -> bytes:
    header = struct.pack(
        _HEADER_FMT,
        MAGIC,
        VERSION,
        dtype,
        n_ant,
        stream_id,
        session,
        seq,
        n_samples,
        n_symbols,
        frag_index,
        frag_count,
        flags,
        len(payload),
    )
    return header + payload


def fragment_extent(header: Header, max_payload: int) -> Tuple[int, int]:
    """Byte ``(offset, length)`` of one fragment within its packet payload."""
    offset = header.frag_index * max_payload
    length = min(max_payload, header.packet_nbytes - offset)
    return offset, length


def encode_packet(
    stream_id: int,
    seq: int,
    rx: np.ndarray,
    n_symbols: int = 2,
    dtype: "int | str" = "c64",
    session: int = 0,
    max_payload: int = 1408,
) -> List[bytes]:
    """Encode one modem packet as its ordered list of wire datagrams.

    *max_payload* bounds each datagram's payload (1408 + the 36-byte
    header stays under a 1500-byte MTU); the packet is split into
    uniform chunks so the receiver derives offsets from ``frag_index``.
    """
    if max_payload < 1:
        raise ValueError("max_payload must be >= 1, got %d" % max_payload)
    code = _dtype_code(dtype)
    rx = np.atleast_2d(rx)
    n_ant, n_samples = int(rx.shape[0]), int(rx.shape[1])
    if not 1 <= n_ant <= _MAX_ANTENNAS:
        raise ValueError("n_ant must be 1..%d, got %d" % (_MAX_ANTENNAS, n_ant))
    payload = encode_payload(rx, code)
    if len(payload) > MAX_PACKET_NBYTES:
        raise ValueError(
            "packet payload of %d bytes exceeds the %d-byte protocol cap"
            % (len(payload), MAX_PACKET_NBYTES)
        )
    frag_count = max(1, -(-len(payload) // max_payload))
    if frag_count > 0xFFFF:
        raise ValueError("packet needs %d fragments (> 65535)" % frag_count)
    out = []
    for idx in range(frag_count):
        chunk = payload[idx * max_payload : (idx + 1) * max_payload]
        out.append(
            _pack(
                code, n_ant, stream_id, session, seq, n_samples, n_symbols,
                idx, frag_count, 0, chunk,
            )
        )
    return out


def end_marker(stream_id: int, n_packets: int, session: int = 0) -> bytes:
    """The end-of-stream control datagram (``seq`` carries the count).

    Advisory, not load-bearing: it lets a receiver account trailing
    gaps precisely at flush time.  Senders on lossy transports should
    repeat it; duplicates are idempotent.
    """
    return _pack(
        DTYPES["c64"], 1, stream_id, session, n_packets, 0, 0, 0, 0, FLAG_END, b""
    )


# ----------------------------------------------------------------------
# Parsing.
# ----------------------------------------------------------------------


def parse_datagram(data: bytes) -> Tuple[Header, bytes]:
    """Parse one datagram into ``(Header, payload)``, validating hard.

    Raises the typed :class:`ProtocolError` family: short data →
    :class:`TruncatedDatagram`, foreign magic → :class:`BadMagic`,
    wrong revision → :class:`VersionMismatch`, and any internally
    inconsistent field → :class:`CorruptHeader`.
    """
    if len(data) < HEADER_SIZE:
        if len(data) >= 4 and struct.unpack_from("<I", data)[0] != MAGIC:
            raise BadMagic("first bytes are not the ingest magic")
        raise TruncatedDatagram(
            "datagram of %d bytes is shorter than the %d-byte header"
            % (len(data), HEADER_SIZE)
        )
    (
        magic, version, dtype, n_ant, stream_id, session, seq, n_samples,
        n_symbols, frag_index, frag_count, flags, payload_len,
    ) = struct.unpack_from(_HEADER_FMT, data)
    if magic != MAGIC:
        raise BadMagic("magic 0x%08x != 0x%08x" % (magic, MAGIC))
    if version != VERSION:
        raise VersionMismatch(version)
    header = Header(
        dtype, n_ant, stream_id, session, seq, n_samples, n_symbols,
        frag_index, frag_count, flags, payload_len,
    )
    payload = data[HEADER_SIZE:]
    if len(payload) < payload_len:
        raise TruncatedDatagram(
            "payload truncated: header says %d bytes, datagram carries %d"
            % (payload_len, len(payload))
        )
    if len(payload) > payload_len:
        raise CorruptHeader(
            "%d trailing bytes after the declared payload" % (len(payload) - payload_len)
        )
    if header.is_end:
        if frag_count != 0 or payload_len != 0:
            raise CorruptHeader("end-of-stream marker carries a payload")
        return header, b""
    if dtype not in _DTYPE_NAMES:
        raise CorruptHeader("unknown payload dtype code %d" % dtype)
    if not 1 <= n_ant <= _MAX_ANTENNAS:
        raise CorruptHeader("n_ant %d outside 1..%d" % (n_ant, _MAX_ANTENNAS))
    if frag_count < 1:
        raise CorruptHeader("data datagram with frag_count 0")
    if frag_index >= frag_count:
        raise CorruptHeader(
            "frag_index %d >= frag_count %d" % (frag_index, frag_count)
        )
    if n_samples < 1:
        raise CorruptHeader("n_samples must be >= 1, got %d" % n_samples)
    if header.packet_nbytes > MAX_PACKET_NBYTES:
        raise CorruptHeader(
            "packet claims %d payload bytes, cap is %d"
            % (header.packet_nbytes, MAX_PACKET_NBYTES)
        )
    if frag_count > header.packet_nbytes:
        raise CorruptHeader(
            "frag_count %d exceeds the packet's %d payload bytes"
            % (frag_count, header.packet_nbytes)
        )
    return header, payload


def datagram_stream_id(data: bytes) -> int:
    """Best-effort stream id peek (for accounting malformed traffic); -1
    when the datagram is too short to carry one."""
    if len(data) < 12:
        return -1
    return struct.unpack_from("<I", data, 8)[0]
