"""`IngestServer`: sockets in, fabric submissions out, everything counted.

The serving pipeline has three stages with distinct threading rules:

1. **Listener thread** (owned by this class): a `selectors` loop over
   one UDP socket and/or one TCP listener.  UDP datagrams and TCP
   length-prefixed frames carry identical bytes; both are fed to the
   :class:`~repro.ingest.reassembly.Reassembler` under the server lock
   and completed packets are *staged* in bounded per-stream buffers.
   The listener never touches the fabric's task queues — the fabric's
   pump is single-threaded by design.
2. **Owner thread** (whoever owns the fabric): calls :meth:`poll` /
   :meth:`drain`, which move staged packets into
   :meth:`Fabric.offer` — inheriting the fabric's configured
   backpressure mode — and pump completions.  ``block`` mode absorbs
   bursts by pumping inside ``offer``; ``drop``/``deadline`` modes shed
   with typed reasons this layer records per stream.
3. **Scrape threads** (:class:`~repro.obs.server.ObsServer`): read-only
   snapshots via :meth:`ingest_report` / :meth:`health_checks`, taken
   under the same lock the listener mutates under.

Exactly-once accounting invariant, per stream: every sequence number
the sender produced ends in exactly one of ``released →
{submitted, shed_overflow, shed_dropped, shed_rejected}`` or ``lost →
{gaps, incomplete}`` (plus ``corrupt``); :meth:`accounting_problems`
checks it against a sender's packet count and backs the CI
``ingest-smoke`` gate's "zero unaccounted packets" assertion.
"""

from __future__ import annotations

import selectors
import socket
import struct
import threading
import time
from collections import OrderedDict, deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.ingest.reassembly import ReassembledPacket, Reassembler

__all__ = ["IngestError", "IngestServer", "SHED_COUNTERS"]

#: Per-stream shed counters (submission stage), by typed reason.
SHED_COUNTERS = ("shed_overflow", "shed_dropped", "shed_rejected")

#: TCP frames above this are a protocol violation (drops the client).
_MAX_FRAME = 1 << 20

#: Kernel receive buffer requested for the UDP socket: loopback tests
#: blast thousands of datagrams faster than the listener thread wakes.
_UDP_RCVBUF = 1 << 22


class IngestError(RuntimeError):
    """Ingest-layer failures (lifecycle misuse, drain timeout)."""


class IngestServer:
    """Network front-end feeding packetized IQ streams into a fabric.

    Parameters
    ----------
    fabric:
        A started (or about-to-start) :class:`~repro.fabric.Fabric`.
        The server attaches itself so ``fabric.report()`` gains the
        ``ingest`` section and ``/healthz`` the listener check.
    udp_port / tcp_port:
        Listen ports (0 = ephemeral; ``None`` disables that transport).
        At least one transport must be enabled.
    window:
        Reassembly reorder window (packets), per stream.
    stream_buffer:
        Completed packets staged per stream awaiting :meth:`poll`;
        overflow sheds the *newest* packet with ``shed_overflow``
        accounting (the socket thread must never block).
    track_submissions:
        How many recent ``(stream_id, seq) -> task_id`` mappings
        :meth:`submissions` retains (oldest evicted first).  Bounded so
        a long-running server does not leak one entry per packet ever
        served; raise it in tests that map every result back.
    """

    def __init__(
        self,
        fabric,
        host: str = "127.0.0.1",
        udp_port: Optional[int] = 0,
        tcp_port: Optional[int] = None,
        window: int = 64,
        stream_buffer: int = 256,
        track_submissions: int = 4096,
        name: str = "ingest",
    ) -> None:
        if udp_port is None and tcp_port is None:
            raise ValueError("enable at least one transport (udp_port/tcp_port)")
        if stream_buffer < 1:
            raise ValueError("stream_buffer must be >= 1, got %d" % stream_buffer)
        if track_submissions < 1:
            raise ValueError(
                "track_submissions must be >= 1, got %d" % track_submissions
            )
        self.fabric = fabric
        self.host = host
        self.name = name
        self.stream_buffer = int(stream_buffer)
        self.track_submissions = int(track_submissions)
        self._udp_requested = udp_port
        self._tcp_requested = tcp_port
        self._reassembler = Reassembler(window=window)
        self._lock = threading.Lock()
        self._staged: Deque[ReassembledPacket] = deque()
        self._staged_per_stream: Dict[int, int] = {}
        self._shed: Dict[int, Dict[str, int]] = {}
        self._submitted: Dict[int, int] = {}
        self._task_ids: "OrderedDict[Tuple[int, int], int]" = OrderedDict()
        self._datagrams = 0
        self._tcp_conns = 0
        self._tcp_violations = 0
        self._udp_sock: Optional[socket.socket] = None
        self._tcp_sock: Optional[socket.socket] = None
        self._selector: Optional[selectors.BaseSelector] = None
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._started = False
        self._closed = False
        fabric.attach_ingest(self)

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    def start(self) -> "IngestServer":
        if self._started:
            raise IngestError("ingest server already started")
        if self._closed:
            raise IngestError("ingest server already stopped")
        self._selector = selectors.DefaultSelector()
        if self._udp_requested is not None:
            sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, _UDP_RCVBUF)
            sock.bind((self.host, self._udp_requested))
            sock.setblocking(False)
            self._selector.register(sock, selectors.EVENT_READ, ("udp", None))
            self._udp_sock = sock
        if self._tcp_requested is not None:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind((self.host, self._tcp_requested))
            sock.listen(16)
            sock.setblocking(False)
            self._selector.register(sock, selectors.EVENT_READ, ("accept", None))
            self._tcp_sock = sock
        self._thread = threading.Thread(
            target=self._listen_loop, name="%s-listener" % self.name, daemon=True
        )
        self._started = True
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop listening (idempotent).  Staged packets stay pollable."""
        if not self._started or self._closed:
            self._closed = True
            return
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5)
        if self._selector is not None:
            for key in list(self._selector.get_map().values()):
                try:
                    self._selector.unregister(key.fileobj)
                    key.fileobj.close()
                except (KeyError, OSError):
                    pass
            self._selector.close()
        self._udp_sock = None
        self._tcp_sock = None
        self._closed = True

    def __enter__(self) -> "IngestServer":
        if not self._started:
            self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    @property
    def udp_address(self) -> Optional[Tuple[str, int]]:
        """The bound UDP ``(host, port)``; None when UDP is disabled."""
        return self._udp_sock.getsockname() if self._udp_sock is not None else None

    @property
    def tcp_address(self) -> Optional[Tuple[str, int]]:
        """The bound TCP ``(host, port)``; None when TCP is disabled."""
        return self._tcp_sock.getsockname() if self._tcp_sock is not None else None

    @property
    def listening(self) -> bool:
        """True while the listener thread is serving its sockets."""
        return (
            self._started
            and not self._closed
            and self._thread is not None
            and self._thread.is_alive()
        )

    # ------------------------------------------------------------------
    # Listener thread: sockets -> reassembler -> staging.
    # ------------------------------------------------------------------

    def _listen_loop(self) -> None:
        buffers: Dict[socket.socket, bytearray] = {}
        while not self._stop.is_set():
            events = self._selector.select(timeout=0.1)
            for key, _ in events:
                kind, _ = key.data
                if kind == "udp":
                    self._drain_udp(key.fileobj)
                elif kind == "accept":
                    self._accept_tcp(key.fileobj, buffers)
                else:
                    self._read_tcp(key.fileobj, buffers)

    def _drain_udp(self, sock: socket.socket) -> None:
        while True:
            try:
                data, _ = sock.recvfrom(65536)
            except BlockingIOError:
                return
            except OSError:
                return
            self._ingest_datagram(data)

    def _accept_tcp(self, listener: socket.socket, buffers: dict) -> None:
        try:
            conn, _ = listener.accept()
        except OSError:
            return
        conn.setblocking(False)
        buffers[conn] = bytearray()
        self._selector.register(conn, selectors.EVENT_READ, ("tcp", None))
        with self._lock:
            self._tcp_conns += 1

    def _drop_tcp(self, conn: socket.socket, buffers: dict) -> None:
        try:
            self._selector.unregister(conn)
        except KeyError:
            pass
        buffers.pop(conn, None)
        try:
            conn.close()
        except OSError:
            pass

    def _read_tcp(self, conn: socket.socket, buffers: dict) -> None:
        try:
            data = conn.recv(65536)
        except BlockingIOError:
            return
        except OSError:
            self._drop_tcp(conn, buffers)
            return
        if not data:
            self._drop_tcp(conn, buffers)
            return
        buf = buffers[conn]
        buf.extend(data)
        while len(buf) >= 4:
            (frame_len,) = struct.unpack_from("<I", buf)
            if frame_len > _MAX_FRAME:
                with self._lock:
                    self._tcp_violations += 1
                self._drop_tcp(conn, buffers)
                return
            if len(buf) < 4 + frame_len:
                break
            frame = bytes(buf[4 : 4 + frame_len])
            del buf[: 4 + frame_len]
            self._ingest_datagram(frame)

    def _ingest_datagram(self, data: bytes) -> None:
        with self._lock:
            self._datagrams += 1
            completed = self._reassembler.offer(data)
            for packet in completed:
                count = self._staged_per_stream.get(packet.stream_id, 0)
                if count >= self.stream_buffer:
                    self._shed_locked(packet.stream_id, "shed_overflow")
                    continue
                self._staged_per_stream[packet.stream_id] = count + 1
                self._staged.append(packet)
        # Rolling-window wiring: thread-safe counters on the fabric side.
        self.fabric.ingest_event("ingest_datagrams")
        if completed:
            self.fabric.ingest_event("ingest_packets", len(completed))

    def _shed_locked(self, stream_id: int, reason: str) -> None:
        shed = self._shed.setdefault(
            stream_id, {name: 0 for name in SHED_COUNTERS}
        )
        shed[reason] += 1

    # ------------------------------------------------------------------
    # Owner thread: staging -> fabric.
    # ------------------------------------------------------------------

    def poll(self, timeout: float = 0.0) -> int:
        """Submit staged packets into the fabric and pump it once.

        Must be called from the fabric-owning thread (the fabric's pump
        is single-threaded).  Returns how many packets were accepted
        this call; shed packets are accounted per stream by their typed
        :class:`~repro.fabric.SubmitOutcome` reason.
        """
        accepted = 0
        while True:
            # Batch-aware submission: take every staged packet of one
            # n_symbols run in a single lock round-trip, offer them with
            # one Fabric.offer_many call (one completion pump for the
            # whole burst), then account all outcomes under one lock.
            # Shed accounting is per packet and unchanged: each outcome
            # carries its typed reason.
            with self._lock:
                if not self._staged:
                    break
                batch = []
                n_symbols = self._staged[0].n_symbols
                while self._staged and self._staged[0].n_symbols == n_symbols:
                    packet = self._staged.popleft()
                    self._staged_per_stream[packet.stream_id] -= 1
                    batch.append(packet)
            outcomes = self.fabric.offer_many(
                [packet.rx for packet in batch], n_symbols=n_symbols
            )
            shed = 0
            with self._lock:
                for packet, outcome in zip(batch, outcomes):
                    if outcome.accepted:
                        accepted += 1
                        self._submitted[packet.stream_id] = (
                            self._submitted.get(packet.stream_id, 0) + 1
                        )
                        self._task_ids[(packet.stream_id, packet.seq)] = (
                            outcome.task_id
                        )
                        while len(self._task_ids) > self.track_submissions:
                            self._task_ids.popitem(last=False)
                    else:
                        self._shed_locked(packet.stream_id, "shed_" + outcome.reason)
                        shed += 1
            if shed:
                self.fabric.ingest_event("ingest_shed", shed)
        self.fabric.poll(timeout)
        return accepted

    def drain(
        self, idle_s: float = 0.3, timeout: Optional[float] = 60.0
    ) -> Dict[int, object]:
        """Wait for the wire to go quiet, flush, and drain the fabric.

        "Quiet" means no datagram arrived for *idle_s* seconds and
        nothing is staged; then the reassembler is flushed (declaring
        trailing losses, guided by end-of-stream markers when the
        sender sent them), the flushed packets are submitted, and the
        fabric drains.  Returns ``fabric.results()``.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        last_count = -1
        quiet_since = time.monotonic()
        while True:
            self.poll(0.02)
            with self._lock:
                count = self._datagrams
                staged = len(self._staged)
            now = time.monotonic()
            if count != last_count or staged:
                last_count = count
                quiet_since = now
            elif now - quiet_since >= idle_s:
                break
            if deadline is not None and now > deadline:
                raise IngestError(
                    "ingest drain timed out (%d datagrams, %d staged)"
                    % (count, staged)
                )
        with self._lock:
            for packet in self._reassembler.flush():
                self._staged.append(packet)
                self._staged_per_stream[packet.stream_id] = (
                    self._staged_per_stream.get(packet.stream_id, 0) + 1
                )
        self.poll(0.0)
        remaining = None if deadline is None else max(0.1, deadline - time.monotonic())
        self.fabric.drain(timeout=remaining)
        return self.fabric.results()

    def submissions(self) -> Dict[Tuple[int, int], int]:
        """``(stream_id, seq) -> fabric task id`` for recently accepted
        packets (the newest *track_submissions* of them)."""
        with self._lock:
            return dict(self._task_ids)

    # ------------------------------------------------------------------
    # Accounting and observability.
    # ------------------------------------------------------------------

    def ingest_report(self) -> dict:
        """The ``ingest`` section of ``Fabric.report()`` (thread-safe)."""
        with self._lock:
            stats = self._reassembler.stats()
            streams = {}
            for stream_id_str, counters in stats["streams"].items():
                stream_id = int(stream_id_str)
                view = dict(counters)
                shed = self._shed.get(
                    stream_id, {name: 0 for name in SHED_COUNTERS}
                )
                view.update(shed)
                view["submitted"] = self._submitted.get(stream_id, 0)
                view["staged"] = self._staged_per_stream.get(stream_id, 0)
                streams[stream_id_str] = view
            udp = self.udp_address
            tcp = self.tcp_address
            return {
                "name": self.name,
                "listening": self.listening,
                "udp_port": udp[1] if udp else None,
                "tcp_port": tcp[1] if tcp else None,
                "datagrams": self._datagrams,
                "staged": len(self._staged),
                "tcp_connections": self._tcp_conns,
                "tcp_violations": self._tcp_violations,
                "malformed": dict(stats["listener"]),
                "evicted": dict(stats["evicted"]),
                "streams": streams,
            }

    def health_checks(self) -> Dict[str, list]:
        """The ``ingest:listener`` check merged into ``Fabric.health()``.

        ``pass`` while the listener thread serves its sockets, ``warn``
        after a clean :meth:`stop` (the fabric still drains staged
        work), ``fail`` when the thread died with sockets still open.
        """
        if not self._started:
            status = "warn"
        elif self._closed:
            status = "warn"
        elif self.listening:
            status = "pass"
        else:
            status = "fail"
        udp = self.udp_address
        tcp = self.tcp_address
        with self._lock:
            datagrams = self._datagrams
            streams = len(self._reassembler.stream_ids())
        return {
            "ingest:listener": [
                {
                    "componentType": "component",
                    "status": status,
                    "observedValue": datagrams,
                    "observedUnit": "datagrams",
                    "udpPort": udp[1] if udp else None,
                    "tcpPort": tcp[1] if tcp else None,
                    "streams": streams,
                }
            ]
        }

    def accounting_problems(self, sent: Dict[int, int]) -> List[str]:
        """Check the exactly-once invariant against sender truth.

        *sent* maps stream id → packets the sender produced.  Every one
        must land in exactly one bucket: released (then submitted or
        shed) or declared lost (gap/incomplete) or corrupt — with
        nothing still buffered.  Returns human-readable violations
        (empty list = fully accounted).
        """
        problems: List[str] = []
        report = self.ingest_report()
        for stream_id, n_sent in sorted(sent.items()):
            view = report["streams"].get(str(stream_id))
            if view is None:
                if n_sent:
                    problems.append("stream %d: never seen by the listener" % stream_id)
                continue
            released = view["released"]
            lost = view["gaps"] + view["incomplete"] + view["corrupt"]
            buffered = view["pending"] + view["ready"] + view["staged"]
            if buffered:
                problems.append(
                    "stream %d: %d packets still buffered" % (stream_id, buffered)
                )
            if released + lost != n_sent:
                problems.append(
                    "stream %d: sent %d != released %d + lost %d"
                    % (stream_id, n_sent, released, lost)
                )
            submitted = view["submitted"]
            shed = sum(view[name] for name in SHED_COUNTERS)
            if submitted + shed != released:
                problems.append(
                    "stream %d: released %d != submitted %d + shed %d"
                    % (stream_id, released, submitted, shed)
                )
        return problems
