#!/usr/bin/env python
"""Design-space ablation: how the interconnect density shapes the design.

The paper motivates its "densely interconnected" array (and pays for it:
the interconnect is the largest power consumer in both modes).  This
example re-schedules representative kernels on three interconnect
variants — plain nearest-neighbour mesh, the dense mesh-plus (the paper
core) and a hypothetical all-to-all fabric — and compares achieved II,
routing moves and modelled area.

Run:  python examples/design_space_ablation.py
"""

from repro.arch import paper_core
from repro.arch.topology import full_topology, mesh_plus_topology, mesh_topology
from repro.compiler import ModuloScheduler
from repro.kernels.demod import build_demod_dfg
from repro.kernels.fshift import build_fshift_dfg
from repro.kernels.sdm import build_sdm_dfg
from repro.power import estimate_area

VARIANTS = [
    ("mesh", mesh_topology(4, 4)),
    ("mesh+buses (paper)", mesh_plus_topology(4, 4)),
    ("all-to-all", full_topology(16)),
]

KERNELS = [
    ("fshift", build_fshift_dfg, {"src": 60, "dst": 61, "tab": 62}),
    ("sdm", build_sdm_dfg, {"ybase": 60, "wbase": 61, "xbase": 62}),
    ("demod", build_demod_dfg, {"src": 60, "dst": 61}),
]


def main():
    print(
        "%-20s %-8s %4s %4s %6s %7s"
        % ("interconnect", "kernel", "MII", "II", "moves", "wires")
    )
    print("-" * 60)
    for name, topo in VARIANTS:
        arch = paper_core(name="ablate-%s" % name, interconnect=topo)
        for kname, build, live_ins in KERNELS:
            sched = ModuloScheduler(build(), arch)
            result = sched.schedule(live_in_regs=live_ins, trip_count=8)
            print(
                "%-20s %-8s %4d %4d %6d %7d"
                % (name, kname, result.mii, result.ii, result.n_moves,
                   topo.wire_count)
            )
        area = estimate_area(arch)
        print(
            "%-20s -> modelled area %.2f mm^2 (interconnect share %.1f%%)"
            % (name, area.total_mm2, 100 * area.fractions["interconnect"])
        )
        print()
    print(
        "Denser interconnects reach the resource-bound II with fewer\n"
        "routing moves (the all-to-all fabric never needs them) but pay\n"
        "area — the trade the paper resolves with the mesh-plus fabric."
    )


if __name__ == "__main__":
    main()
