#!/usr/bin/env python
"""Serve a live Poisson packet stream through a multi-core fabric.

A 4-worker :class:`~repro.fabric.Fabric` (each worker a resident modem
runtime forked from one warm parent template) serves a 10-second
Poisson arrival process of mixed traffic — three carrier offsets, two
SNRs and two frame lengths, routed with the ``shape_affinity`` policy
so each frame length settles on a subset of workers.  Submission is
paced to the arrival times, like a front-end handing over frames in
real time; ``deadline`` backpressure sheds what a saturated fabric
cannot serve in time.

Every completed packet is checked against its ground-truth payload,
then the fabric report is printed as JSON next to its Prometheus
rendering.

With ``--obs-port`` the fabric also serves its live telemetry plane
(``/metrics``, ``/healthz``, ``/report.json``, ``/events.json``) for
the whole run — point a browser or ``curl`` at the printed URL while
the stream is in flight — and the script self-scrapes ``/metrics``
once at the end to prove the exposition page lints clean.

Run:  PYTHONPATH=src python examples/fabric_serving.py \\
          [--duration 10] [--rate 3] [--workers 4] [--obs-port 9100]
"""

import argparse
import json
import time
import urllib.request

import numpy as np

from repro.fabric import (
    DeadlineExceeded,
    Fabric,
    FabricTaskError,
    fabric_prometheus_text,
    fabric_report_json,
    poisson_stream,
    run_stream,
    stream_truth,
)
from repro.runtime import make_packet


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=10.0, help="stream seconds")
    parser.add_argument("--rate", type=float, default=3.0, help="mean arrivals/s")
    parser.add_argument("--workers", type=int, default=4, help="fabric size")
    parser.add_argument("--seed", type=int, default=7, help="stream seed")
    parser.add_argument(
        "--obs-port",
        type=int,
        default=None,
        help="serve live /metrics, /healthz, /report.json on this port "
        "(0 picks a free one; omit to disable)",
    )
    args = parser.parse_args(argv)

    fab = Fabric(
        workers=args.workers,
        policy="shape_affinity",
        backpressure="deadline",
        deadline_s=5.0,
        queue_depth=8,
        name="serving",
        obs_port=args.obs_port,
    )
    print("warming the parent template (workers fork it fully linked) ...")
    t0 = time.perf_counter()
    fab.start(warm_packets=[make_packet(0, cfo_hz=50e3).rx])
    print("fabric of %d worker(s) up in %.2fs" % (args.workers, time.perf_counter() - t0))
    if fab.obs_url is not None:
        print(
            "live telemetry at %s  (try: curl %s/metrics)"
            % (fab.obs_url, fab.obs_url)
        )

    events = poisson_stream(
        rate_hz=args.rate,
        duration_s=args.duration,
        base_seed=args.seed,
        cfo_choices=(20e3, 50e3, 80e3),
        snr_choices=(None, 30.0),
        pad_choices=(0, 64),
    )
    print(
        "serving a %.0fs Poisson stream at %.1f packets/s ..."
        % (args.duration, args.rate)
    )
    offered = run_stream(fab, events, realtime=True)
    results = fab.drain(timeout=300)
    report = fab.report()
    if fab.obs_url is not None:
        # Self-scrape while the server is still up: the page must lint
        # clean and /healthz must agree the fabric is serving.
        from repro.obs import lint_exposition

        page = urllib.request.urlopen(fab.obs_url + "/metrics", timeout=5).read()
        problems = lint_exposition(page.decode("utf-8"))
        assert not problems, "exposition lint failed: %s" % problems
        with urllib.request.urlopen(fab.obs_url + "/healthz", timeout=5) as resp:
            health = json.loads(resp.read())
        print(
            "self-scrape: /metrics %d bytes (lint clean), /healthz %s"
            % (len(page), health["status"])
        )
    fab.shutdown()

    truth = stream_truth(offered)
    clean = noisy = errored = late = 0
    noisy_bers = []
    for task_id, case in truth.items():
        out = results[task_id]
        if isinstance(out, DeadlineExceeded):
            late += 1  # accepted, then shed while queued
            continue
        if isinstance(out, FabricTaskError):
            errored += 1
            continue
        ber = float(np.mean(out.bits != case.bits))
        if case.snr_db is None:
            # Noiseless packets must decode exactly; at finite SNR a
            # small residual BER is physics, not a fabric bug.
            assert ber == 0.0, "clean packet %d decoded wrong" % task_id
            clean += 1
        else:
            assert ber < 0.05, "packet %d BER %.3f at %g dB" % (task_id, ber, case.snr_db)
            noisy += 1
            noisy_bers.append(ber)
    shed = sum(1 for task_id, _ in offered if task_id is None)
    print(
        "offered %d packets: %d noiseless decoded exactly, %d noisy "
        "(mean ber %.4f), %d errored, %d shed at submit, %d shed late"
        % (
            len(offered),
            clean,
            noisy,
            float(np.mean(noisy_bers)) if noisy_bers else 0.0,
            errored,
            shed,
            late,
        )
    )

    print("\n--- fabric report (JSON) ---")
    print(fabric_report_json(report))
    print("\n--- fabric report (Prometheus) ---")
    print(fabric_prometheus_text(report), end="")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
