#!/usr/bin/env python
"""Serve packetized IQ over loopback UDP into a live modem fabric.

The networked twin of ``fabric_serving.py``: instead of in-process
submission, waveforms travel the :mod:`repro.ingest` wire format —
fragmented into MTU-sized datagrams, sent over a real UDP socket, then
reassembled, reordered and accounted by an
:class:`~repro.ingest.IngestServer` feeding a 2-worker
:class:`~repro.fabric.Fabric` of forked modem runtimes.

Two streams share the listener:

* stream 1 carries ``c128`` payloads over a clean loopback — every
  delivered waveform is bit-exact, so every decode must match its
  ground-truth payload;
* stream 2 carries ``c64`` payloads through injected chaos (datagram
  reordering, drops, duplicates) — what survives intact must still
  decode, and what the chaos killed must land in the loss counters.

At the end the per-stream accounting ledger is printed and checked:
every sent packet in exactly one of released / gaps / incomplete,
every released packet in submitted or shed, nothing left buffered.

With ``--obs-port`` the fabric serves its telemetry plane for the whole
run — ``curl <url>/metrics`` while it streams to watch the
``repro_ingest_*`` families move.

Run:  PYTHONPATH=src python examples/ingest_serving.py \\
          [--packets 10] [--reorder 0.25] [--drop 0.04] [--obs-port 9100]
"""

import argparse
import json
import time

import numpy as np

from repro.fabric import Fabric
from repro.ingest import IngestServer, send_stream
from repro.runtime import generate_packets


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--packets", type=int, default=10, help="packets per stream")
    parser.add_argument(
        "--reorder", type=float, default=0.25, help="stream-2 datagram reorder rate"
    )
    parser.add_argument(
        "--drop", type=float, default=0.04, help="stream-2 datagram drop rate"
    )
    parser.add_argument("--seed", type=int, default=7, help="chaos seed")
    parser.add_argument(
        "--obs-port",
        type=int,
        default=None,
        help="serve live /metrics and /healthz on this port "
        "(0 picks a free one; omit to disable)",
    )
    args = parser.parse_args(argv)

    cases = generate_packets(args.packets, base_seed=42, cfo_hz=50e3)
    fab = Fabric(
        workers=2, queue_depth=8, name="ingest-serving", obs_port=args.obs_port
    )
    print("warming the parent template (workers fork it fully linked) ...")
    t0 = time.perf_counter()
    fab.start(warm_packets=[cases[0].rx])
    print("fabric of 2 workers up in %.2fs" % (time.perf_counter() - t0))

    with fab:
        with IngestServer(fab, udp_port=0, window=32) as server:
            host, port = server.udp_address
            print("ingest listening on udp://%s:%d" % (host, port))
            if fab.obs_url is not None:
                print(
                    "live telemetry at %s  (try: curl %s/metrics)"
                    % (fab.obs_url, fab.obs_url)
                )

            waves = [case.rx for case in cases]
            clean = send_stream(
                waves, udp=server.udp_address, stream_id=1, dtype="c128"
            )
            chaos = send_stream(
                waves,
                udp=server.udp_address,
                stream_id=2,
                dtype="c64",
                reorder=args.reorder,
                drop=args.drop,
                duplicate=0.05,
                seed=args.seed,
            )
            print(
                "sent %d datagrams (stream 2 chaos: %d dropped, %d reordered, "
                "%d duplicated)"
                % (
                    clean.datagrams + chaos.datagrams,
                    chaos.dropped,
                    chaos.reordered,
                    chaos.duplicated,
                )
            )
            results = server.drain(timeout=300)

        # Decode correctness: c128 transport is bit-exact so stream 1
        # must decode every payload; stream 2's survivors must too (the
        # q15/c64 round trip is far above the modem's noise floor).
        tasks = server.submissions()
        decoded = {1: 0, 2: 0}
        for (stream_id, seq), task_id in sorted(tasks.items()):
            ber = float(np.mean(results[task_id].bits != cases[seq].bits))
            assert ber == 0.0, "stream %d seq %d BER %.3f" % (stream_id, seq, ber)
            decoded[stream_id] += 1
        assert decoded[1] == args.packets, "clean stream lost packets on loopback"
        assert decoded[2] == len(chaos.intact_seqs), (
            "chaos stream: decoded %d, sender delivered %d intact"
            % (decoded[2], len(chaos.intact_seqs))
        )

        sent = {1: clean.n_packets, 2: chaos.n_packets}
        problems = server.accounting_problems(sent)
        assert problems == [], problems

        print("\n--- per-stream accounting (exactly-once ledger balances) ---")
        ingest = fab.report()["ingest"]
        for stream_id, view in sorted(ingest["streams"].items()):
            lost = view["gaps"] + view["incomplete"] + view["corrupt"]
            print(
                "stream %s: sent=%d released=%d submitted=%d lost=%d "
                "(gaps=%d incomplete=%d) out_of_order=%d duplicates=%d"
                % (
                    stream_id,
                    sent[int(stream_id)],
                    view["released"],
                    view["submitted"],
                    lost,
                    view["gaps"],
                    view["incomplete"],
                    view["out_of_order"],
                    view["duplicates"],
                )
            )
        print("\n--- ingest report (JSON) ---")
        print(json.dumps(ingest, indent=1, sort_keys=True))
    print(
        "\ndecoded %d/%d clean + %d/%d chaos packets, all bit-exact; "
        "every loss accounted"
        % (decoded[1], args.packets, decoded[2], args.packets)
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
