#!/usr/bin/env python
"""Author a custom DSP kernel: a complex FIR filter on packed samples.

Shows the full authoring flow for a kernel the paper does not ship:
a 4-tap complex FIR over the packed complex-pair layout, verified
against a NumPy reference with exact Q15 arithmetic.

Run:  python examples/custom_kernel_fir.py
"""

import numpy as np

from repro.arch import paper_core
from repro.compiler import KernelBuilder
from repro.compiler.dfg import Const
from repro.compiler.linker import ProgramLinker
from repro.isa import Opcode
from repro.kernels.common import load_complex_array, pack_complex_word, store_complex_array
from repro.phy.fixed import cmul_q15, q15, quantize_complex
from repro.sim import Core


def build_fir_dfg(tap_words):
    """y[n] = sum_k h[k] * x[n - k], two outputs per iteration.

    Taps are compile-time packed constants (each duplicated into both
    pair slots); sample pairs stream through 64-bit loads.
    """
    kb = KernelBuilder("fir4")
    src = kb.live_in("src")
    dst = kb.live_in("dst")
    i_src = kb.induction(0, 8)
    i_dst = kb.induction(0, 8)
    addr = kb.add(src, i_src)
    acc = None
    for k, tap in enumerate(tap_words):
        # Packed pair (x[n-k], x[n+1-k]) starts k samples back.
        x = kb.load(Opcode.LD_Q, addr, offset=-k)
        term = kb.cmul(x, Const(tap))
        acc = term if acc is None else kb.c4add(acc, term)
    kb.store(Opcode.ST_Q, kb.add(dst, i_dst), acc)
    return kb.finish()


def main():
    arch = paper_core()
    rng = np.random.default_rng(7)
    taps = 0.4 * (rng.normal(size=4) + 1j * rng.normal(size=4))
    n = 64

    tap_words = []
    for h in taps:
        w = pack_complex_word(int(q15(h.real)), int(q15(h.imag)))
        tap_words.append(w | (w << 32))

    dfg = build_fir_dfg(tap_words)
    linker = ProgramLinker(arch)
    # Source buffer leaves 4 samples of history before the start.
    src, dst = 64, 2048
    linker.call_kernel(dfg, live_ins={"src": src, "dst": dst}, trip_count=n // 2)
    program = linker.link()
    result = linker.kernel_results[0]
    print(
        "fir4: %d ops, II=%d, %d stages, %d moves"
        % (result.n_ops, result.ii, result.stage_count, result.n_moves)
    )

    x = 0.25 * (rng.normal(size=n + 4) + 1j * rng.normal(size=n + 4))
    re, im = quantize_complex(x)
    core = Core(arch, program)
    store_complex_array(core.scratchpad, src - 4 * 4, re, im)
    core.run()
    got_re, got_im = load_complex_array(core.scratchpad, dst, n)

    # Exact Q15 reference.
    tr, ti = q15(taps.real), q15(taps.imag)
    exp_re = np.zeros(n, dtype=np.int32)
    exp_im = np.zeros(n, dtype=np.int32)
    for nn in range(n):
        acc_r = acc_i = 0
        for k in range(4):
            pr, pi = cmul_q15(re[4 + nn - k], im[4 + nn - k], tr[k], ti[k])
            acc_r = np.clip(acc_r + int(pr), -32768, 32767)
            acc_i = np.clip(acc_i + int(pi), -32768, 32767)
        exp_re[nn], exp_im[nn] = acc_r, acc_i
    ok = np.array_equal(got_re, exp_re.astype(np.int16)) and np.array_equal(
        got_im, exp_im.astype(np.int16)
    )
    print("bit-exact against the Q15 reference:", ok)
    err = np.abs(
        (got_re / 32768 + 1j * got_im / 32768)
        - np.convolve(x, taps)[4 : 4 + n]
    )
    print("max deviation from float convolution: %.4f" % err.max())


if __name__ == "__main__":
    main()
