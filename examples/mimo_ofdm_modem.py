#!/usr/bin/env python
"""The paper's case study: a 2x2 MIMO-OFDM packet through the processor.

Transmits a 64-QAM packet with the golden transmitter, impairs it with a
carrier frequency offset, and runs the complete receive pipeline — every
Table 2 kernel, compiled by the DRESC-like compiler and executed on the
cycle-accurate simulator.  Prints the measured Table 2, the Table 3
power figures and the headline real-time analysis.

With ``--trace-out DIR`` the run is traced: DIR receives a Chrome/
Perfetto ``trace.json`` (load it at https://ui.perfetto.dev) and a
``run_report.json`` (render it with ``python -m repro.trace.report``).

Takes a few minutes of simulation.  Run:
    python examples/mimo_ofdm_modem.py [--trace-out DIR]
"""

import argparse
import os

from repro.eval import (
    headline_report,
    run_reference_modem,
    table2_report,
    table3_report,
    fig6_report,
)
from repro.trace import (
    Tracer,
    build_receiver_report,
    render_report,
    save_run_report,
    write_chrome_trace,
)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--trace-out",
        metavar="DIR",
        default=None,
        help="write trace.json (Chrome/Perfetto) and run_report.json here",
    )
    args = parser.parse_args(argv)

    tracer = Tracer() if args.trace_out else None
    print("simulating one packet through the full receiver ...")
    run = run_reference_modem(seed=42, cfo_hz=50e3, snr_db=None, tracer=tracer)
    print()
    print("=== Table 2: kernel profiling (measured vs paper) ===")
    print(table2_report(run))
    print()
    print("=== Table 3: power (model calibrated on this run) ===")
    print(table3_report(run))
    print()
    print("=== Fig 6: power breakdowns ===")
    print(fig6_report(run))
    print()
    print("=== Headline ===")
    print(headline_report(run))
    print()
    print(
        "CFO: injected %.0f Hz, estimated on-array %.0f Hz; BER %.4f"
        % (run.cfo_true_hz, run.output.cfo_hz, run.ber)
    )

    if tracer is not None:
        os.makedirs(args.trace_out, exist_ok=True)
        trace_path = os.path.join(args.trace_out, "trace.json")
        report_path = os.path.join(args.trace_out, "run_report.json")
        write_chrome_trace(
            trace_path, tracer, meta={"seed": 42, "cfo_hz": 50e3}
        )
        report = build_receiver_report(
            run.output, tracer, meta={"seed": 42, "cfo_hz": 50e3, "ber": run.ber}
        )
        save_run_report(report, report_path)
        print()
        print("=== Run report (%s, %s) ===" % (trace_path, report_path))
        print(render_report(report))


if __name__ == "__main__":
    main()
