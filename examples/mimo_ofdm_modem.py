#!/usr/bin/env python
"""The paper's case study: a 2x2 MIMO-OFDM packet through the processor.

Transmits a 64-QAM packet with the golden transmitter, impairs it with a
carrier frequency offset, and runs the complete receive pipeline — every
Table 2 kernel, compiled by the DRESC-like compiler and executed on the
cycle-accurate simulator.  Prints the measured Table 2, the Table 3
power figures and the headline real-time analysis.

Takes a few minutes of simulation.  Run:
    python examples/mimo_ofdm_modem.py
"""

from repro.eval import (
    headline_report,
    run_reference_modem,
    table2_report,
    table3_report,
    fig6_report,
)


def main():
    print("simulating one packet through the full receiver ...")
    run = run_reference_modem(seed=42, cfo_hz=50e3, snr_db=None)
    print()
    print("=== Table 2: kernel profiling (measured vs paper) ===")
    print(table2_report(run))
    print()
    print("=== Table 3: power (model calibrated on this run) ===")
    print(table3_report(run))
    print()
    print("=== Fig 6: power breakdowns ===")
    print(fig6_report(run))
    print()
    print("=== Headline ===")
    print(headline_report(run))
    print()
    print(
        "CFO: injected %.0f Hz, estimated on-array %.0f Hz; BER %.4f"
        % (run.cfo_true_hz, run.output.cfo_hz, run.ber)
    )


if __name__ == "__main__":
    main()
