#!/usr/bin/env python
"""Quickstart: compile a kernel, run it on the simulated processor.

Builds a tiny fixed-point dot-product kernel in the DSL, modulo-schedules
it onto the paper's 4x4 hybrid CGA, executes it cycle-accurately, and
prints the schedule quality and activity statistics.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.arch import paper_core
from repro.compiler import KernelBuilder
from repro.compiler.linker import ProgramLinker
from repro.isa import Opcode
from repro.kernels.common import store_complex_array
from repro.phy.fixed import q15
from repro.sim import Core


def main():
    arch = paper_core()
    print(arch.summary())
    print()

    # --- author a kernel ("C with intrinsics") -------------------------
    # acc += x[i] * y[i] over Q15 vectors, 4 lanes at a time.
    kb = KernelBuilder("dot4")
    xs = kb.live_in("xs")
    ys = kb.live_in("ys")
    i = kb.induction(0, 8)  # 8 bytes = four 16-bit lanes per iteration
    x = kb.load(Opcode.LD_Q, kb.add(xs, i))
    y = kb.load(Opcode.LD_Q, kb.add(ys, i))
    kb.accumulate(Opcode.C4ADD, kb.d4prod(x, y), init=0, live_out="acc")
    dfg = kb.finish()

    # --- compile --------------------------------------------------------
    n_lanes = 64  # 16 iterations x 4 lanes
    linker = ProgramLinker(arch)
    outs = linker.call_kernel(
        dfg, live_ins={"xs": 0, "ys": 512}, trip_count=n_lanes // 4
    )
    program = linker.link()
    result = linker.kernel_results[0]
    print(
        "schedule: II=%d (MII %d), %d stages, %d ops + %d routing moves, "
        "array utilization %.0f%%"
        % (
            result.ii,
            result.mii,
            result.stage_count,
            result.n_ops,
            result.n_moves,
            100 * result.utilization,
        )
    )

    # --- run --------------------------------------------------------------
    rng = np.random.default_rng(1)
    xv = 0.4 * rng.normal(size=n_lanes)
    yv = 0.4 * rng.normal(size=n_lanes)
    xq, yq = q15(xv), q15(yv)
    core = Core(arch, program)
    # Lanes are independent here, so reuse the complex-pair packer.
    store_complex_array(core.scratchpad, 0, xq[0::2], xq[1::2])
    store_complex_array(core.scratchpad, 512, yq[0::2], yq[1::2])
    core.run()

    # --- inspect ---------------------------------------------------------------
    from repro.isa.bits import split_lanes

    acc_lanes = split_lanes(core.cdrf.peek(outs["acc"].index))
    got = sum(acc_lanes) / (1 << 15)
    from repro.phy.fixed import q15_mul_array

    exact_q15 = float(np.sum(q15_mul_array(xq, yq).astype(np.int64))) / (1 << 15)
    expected = float(np.sum(xv * yv))
    print(
        "dot product: hardware %.4f, exact-Q15 reference %.4f (match: %s), "
        "float %.4f" % (got, exact_q15, abs(got - exact_q15) < 1e-9, expected)
    )
    stats = core.stats
    print(
        "cycles: %d total (%d CGA, %d VLIW), CGA IPC %.1f"
        % (
            stats.total_cycles,
            stats.cga_cycles,
            stats.vliw_cycles,
            stats.cga_ops / max(stats.cga_cycles, 1),
        )
    )
    print(
        "activity: %d L1 accesses, %d config words, %d interconnect transfers"
        % (
            stats.l1_reads + stats.l1_writes,
            stats.config_words,
            stats.interconnect_transfers,
        )
    )


if __name__ == "__main__":
    main()
